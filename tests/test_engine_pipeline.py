"""Engine streaming pipeline: laziness, incremental funnel, single-build."""

import pytest

from repro.gpu.specs import A100
from repro.ir.chain import gemm_chain
from repro.search.engine import pipeline as pipeline_mod
from repro.search.engine.pipeline import PruningFunnel, stream_space
from repro.search.space import SearchSpace, generate_space
from repro.search.tuner import MCFuserTuner
from repro.tiling import schedule as schedule_mod


def _chain(name="eng"):
    return gemm_chain(1, 256, 256, 128, 128, name=name)


class TestStreaming:
    def test_nothing_enumerated_up_front(self):
        space = generate_space(_chain("lazy1"), A100)
        assert space._candidates is None
        assert not space.funnel.complete
        # The analytic funnel head is only filled once the pipeline starts.
        assert space.funnel.after_rule3 == 0

    def test_partial_iteration_is_partial(self):
        space = generate_space(_chain("lazy2"), A100)
        pairs = []
        for pair in space.iter_pairs():
            pairs.append(pair)
            if len(pairs) == 5:
                break
        assert not space.funnel.complete
        assert space.funnel.after_rule4 == 5
        # Abandoned iteration loses nothing: a fresh iterator replays the
        # same prefix in the same order.
        replay = []
        for pair in space.iter_pairs():
            replay.append(pair)
            if len(replay) == 5:
                break
        assert [c.key for c, _ in pairs] == [c.key for c, _ in replay]

    def test_pairs_carry_built_schedules(self):
        space = generate_space(_chain("lazy3"), A100)
        for cand, sched in space.iter_pairs():
            assert space.schedule_for(cand) is sched
            break

    def test_streamed_matches_eager_order(self):
        chain = _chain("lazy4")
        streamed = [c.key for c, _ in generate_space(chain, A100).iter_pairs()]
        materialized = [c.key for c in generate_space(chain, A100).candidates]
        assert streamed == materialized

    def test_funnel_completes_on_materialize(self):
        space = generate_space(_chain("lazy5"), A100)
        stats = space.stats
        assert space.funnel.complete
        assert stats.after_rule4 == len(space)
        assert stats.after_rule3 >= stats.after_rule4

    def test_stats_match_pre_engine_funnel(self):
        # The Fig. 7 configuration; counts pinned by the eager implementation.
        chain = gemm_chain(1, 1024, 1024, 512, 512, name="eng-fig7")
        stats = stream_space(chain, A100).stats
        assert stats.expressions == 26
        assert stats.classes_rule1 == 3
        assert stats.classes_rule2 == 2
        assert stats.original == 26 * 64 * 64 * 32 * 32

    def test_max_candidates_materializes_and_caps(self):
        space = generate_space(_chain("lazy6"), A100, max_candidates=20)
        assert len(list(space.iter_pairs())) == 20
        assert len(space) == 20


class TestFrozenSpace:
    def test_candidates_tuple_immutable(self):
        space = generate_space(_chain("frz1"), A100)
        assert isinstance(space.candidates, tuple)
        with pytest.raises(AttributeError):
            space.candidates = ()

    def test_contains_uses_cached_keys(self):
        space = generate_space(_chain("frz2"), A100)
        cand = space.candidates[0]
        assert space.contains(cand)
        assert space._keys is space._keys  # cached_property: one computation

    def test_from_candidates_eager(self):
        base = generate_space(_chain("frz3"), A100)
        sub = SearchSpace.from_candidates(
            base.chain, base.gpu, base.candidates[:10], base.stats, base.tile_options
        )
        assert len(sub) == 10
        assert sub.contains(base.candidates[0])
        assert not sub.contains(base.candidates[-1])
        assert sub.funnel.complete


class TestSingleBuild:
    """Regression for the historical build-twice waste: ``generate_space``
    built one schedule per candidate for validation and threw it away, then
    the tuner rebuilt every schedule it estimated or measured."""

    @pytest.fixture
    def counters(self, monkeypatch):
        counts = {"pipeline": 0, "space": 0}
        real = schedule_mod.build_schedule

        def counting(where):
            def _build(*args, **kwargs):
                counts[where] += 1
                return real(*args, **kwargs)

            return _build

        # Each consumer imported the symbol into its own namespace.
        monkeypatch.setattr(pipeline_mod, "build_schedule", counting("pipeline"))
        import repro.search.space as space_mod

        monkeypatch.setattr(space_mod, "build_schedule", counting("space"))
        return counts

    def test_schedules_built_once_per_candidate(self, counters):
        chain = gemm_chain(1, 256, 256, 64, 64, name="onebuild")
        report = MCFuserTuner(A100, seed=0).tune(chain)
        enumerated = counters["pipeline"]
        # Validation enumerates more points than survive Rule 4.
        assert enumerated >= report.pruning.after_rule3
        # The search (estimates + measurements + the final best schedule)
        # rebuilt nothing: every schedule came from the pipeline's build.
        assert counters["space"] == 0
        assert report.search.num_estimates > 0

    def test_space_rebuilds_only_on_optimize_mismatch(self, counters):
        chain = gemm_chain(1, 256, 256, 64, 64, name="onebuild2")
        space = generate_space(chain, A100)
        cand = space.candidates[0]
        before = counters["space"]
        space.schedule_for(cand, optimize=True)  # pipeline-built, cached
        assert counters["space"] == before
        space.schedule_for(cand, optimize=False)  # different flag: fresh build
        assert counters["space"] == before + 1
