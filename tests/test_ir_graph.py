"""Unit tests for the operator graph."""

import numpy as np
import pytest

from repro.ir.graph import Graph
from repro.ir.ops import Activation, Add, BiasAdd, Dense, Softmax


def tiny_graph():
    g = Graph("tiny")
    g.add_input("x", (4, 8))
    g.add_param("w", (8, 6))
    g.add_param("b", (6,))
    g.add(Dense(("x", "w"), "h"))
    g.add(BiasAdd(("h", "b"), "hb"))
    g.add(Activation(("hb",), "a", fn="relu"))
    g.mark_output("a")
    return g


class TestConstruction:
    def test_shapes_inferred(self):
        g = tiny_graph()
        assert g.shape("h") == (4, 6)
        assert g.shape("a") == (4, 6)

    def test_duplicate_tensor_rejected(self):
        g = Graph("g")
        g.add_input("x", (2, 2))
        with pytest.raises(ValueError):
            g.add_input("x", (2, 2))

    def test_undefined_input_rejected(self):
        g = Graph("g")
        with pytest.raises(ValueError):
            g.add(Dense(("nope", "w"), "y"))

    def test_duplicate_output_rejected(self):
        g = tiny_graph()
        with pytest.raises(ValueError):
            g.add(Add(("h", "h"), "h"))

    def test_mark_unknown_output(self):
        g = tiny_graph()
        with pytest.raises(ValueError):
            g.mark_output("nope")


class TestQueries:
    def test_producer_consumers(self):
        g = tiny_graph()
        assert g.producer("h").output == "h"
        assert g.producer("x") is None
        assert [n.output for n in g.consumers("h")] == ["hb"]

    def test_total_flops(self):
        g = tiny_graph()
        assert g.total_flops() == 2 * 4 * 8 * 6 + 4 * 6 + 4 * 6

    def test_flops_by_kind(self):
        kinds = tiny_graph().flops_by_kind()
        assert kinds["Dense"] == 2 * 4 * 8 * 6
        assert set(kinds) == {"Dense", "BiasAdd", "Activation"}


class TestExecution:
    def test_execute_matches_numpy(self):
        g = tiny_graph()
        feed = g.random_feed(seed=3)
        env = g.execute(feed)
        expect = np.maximum(feed["x"] @ feed["w"] + feed["b"], 0.0)
        np.testing.assert_allclose(env["a"], expect, rtol=1e-5)

    def test_missing_feed_rejected(self):
        g = tiny_graph()
        with pytest.raises(KeyError):
            g.execute({"x": np.zeros((4, 8), np.float32)})

    def test_random_feed_deterministic(self):
        g = tiny_graph()
        a = g.random_feed(seed=1)
        b = g.random_feed(seed=1)
        for k in a:
            np.testing.assert_array_equal(a[k], b[k])

    def test_softmax_in_graph(self):
        g = Graph("s")
        g.add_input("x", (3, 5))
        g.add(Softmax(("x",), "p"))
        env = g.execute(g.random_feed())
        np.testing.assert_allclose(env["p"].sum(axis=-1), np.ones(3), rtol=1e-6)
