"""Unit tests for tiling expressions (parse/print/structure)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tiling.expr import LoopNest, TilingExpr, parse_expr


class TestParsing:
    def test_deep(self):
        e = TilingExpr.parse("mhnk")
        assert e.loops() == ("m", "h", "n", "k")
        assert e.is_deep
        assert e.max_depth == 4

    def test_flat(self):
        e = TilingExpr.parse("mn(k,h)")
        assert e.loops() == ("m", "n", "k", "h")
        assert not e.is_deep
        assert e.max_depth == 3

    def test_nested_groups(self):
        e = TilingExpr.parse("a(b(c,d),e)")
        assert e.loops() == ("a", "b", "c", "d", "e")
        assert e.parent("e") == "a"
        assert e.parent("c") == "b"

    def test_empty(self):
        assert TilingExpr.parse("").loops() == ()

    def test_roundtrip_deep(self):
        for text in ("m", "mk", "mhnk", "abcdefg"):
            assert TilingExpr.parse(text).render() == text

    def test_roundtrip_flat(self):
        for text in ("mn(k,h)", "a(b,c)", "x(y(z,w),v)"):
            assert TilingExpr.parse(text).render() == text

    def test_rejects_trailing(self):
        with pytest.raises(ValueError):
            TilingExpr.parse("m(n))")

    def test_rejects_unclosed(self):
        with pytest.raises(ValueError):
            TilingExpr.parse("m(n")

    def test_rejects_bad_start(self):
        with pytest.raises(ValueError):
            TilingExpr.parse("(a)b")  # no loop name before group

    def test_rejects_duplicate_loops(self):
        with pytest.raises(ValueError):
            TilingExpr.parse("mm")


class TestConstructors:
    def test_from_perm(self):
        e = TilingExpr.from_perm(("a", "b", "c"))
        assert e.render() == "abc"

    def test_from_empty_perm(self):
        assert TilingExpr.from_perm(()).render() == ""

    def test_flat_constructor(self):
        e = TilingExpr.flat(("m", "n"), [("k",), ("h",)])
        assert e.render() == "mn(k,h)"

    def test_flat_with_chain_groups(self):
        e = TilingExpr.flat(("m",), [("k", "j"), ("h",)])
        assert e.render() == "m(kj,h)"

    def test_flat_skips_empty_groups(self):
        e = TilingExpr.flat(("m",), [(), ("h",)])
        assert e.render() == "mh"


class TestStructureQueries:
    def test_ancestors(self):
        e = TilingExpr.parse("mn(k,h)")
        assert e.ancestors("k") == ("m", "n")
        assert e.ancestors("m") == ()

    def test_depth(self):
        e = TilingExpr.parse("mn(k,h)")
        assert e.depth("m") == 0
        assert e.depth("k") == 2 == e.depth("h")

    def test_encloses(self):
        e = TilingExpr.parse("mhnk")
        assert e.encloses("m", "k")
        assert not e.encloses("k", "m")
        assert not e.encloses("k", "k")

    def test_deepest(self):
        e = TilingExpr.parse("mhnk")
        assert e.deepest({"m", "n"}) == "n"
        assert e.deepest({"h", "k"}) == "k"
        assert e.deepest({"z"}) is None

    def test_deepest_tie_break_pre_order(self):
        e = TilingExpr.parse("m(k,h)")
        # k and h tie at depth 1; later pre-order position wins.
        assert e.deepest({"k", "h"}) == "h"

    def test_node_lookup(self):
        e = TilingExpr.parse("mn(k,h)")
        assert isinstance(e.node("n"), LoopNest)
        assert len(e.node("n").body) == 2


class TestWithout:
    def test_remove_leaf(self):
        assert TilingExpr.parse("mhnk").without({"k"}).render() == "mhn"

    def test_remove_inner_splices(self):
        assert TilingExpr.parse("mhnk").without({"h"}).render() == "mnk"

    def test_remove_root(self):
        assert TilingExpr.parse("mhnk").without({"m"}).render() == "hnk"

    def test_remove_group_parent(self):
        assert TilingExpr.parse("mn(k,h)").without({"n"}).render() == "m(k,h)"

    def test_remove_to_forest(self):
        e = TilingExpr.parse("m(k,h)").without({"m"})
        assert e.render() == "(k,h)"
        assert len(e.roots) == 2

    def test_remove_everything(self):
        assert TilingExpr.parse("mhnk").without({"m", "h", "n", "k"}).render() == ""

    def test_remove_nothing(self):
        e = TilingExpr.parse("mn(k,h)")
        assert e.without(set()).render() == e.render()


@given(st.permutations(list("mnkh")))
def test_property_perm_roundtrip(perm):
    e = TilingExpr.from_perm(tuple(perm))
    assert TilingExpr.parse(e.render()).loops() == tuple(perm)


@given(st.permutations(list("abcdef")), st.sets(st.sampled_from("abcdef"), max_size=4))
def test_property_without_preserves_order(perm, removed):
    e = TilingExpr.from_perm(tuple(perm))
    remaining = e.without(removed).loops()
    expected = tuple(l for l in perm if l not in removed)
    assert remaining == expected
