"""Hot tier (TTL + LRU) and the tiered cache over ScheduleCache."""

import pytest

from repro.cache import ScheduleCache
from repro.cache.store import CacheEntry
from repro.gpu.specs import A100
from repro.ir.chain import gemm_chain
from repro.search.tuner import MCFuserTuner
from repro.serving.telemetry import MetricsRegistry
from repro.serving.tiers import HotTier, TieredCache

QUICK = dict(population_size=64, top_n=4, max_rounds=2, min_rounds=1)


def make_entry(sig: str) -> CacheEntry:
    return CacheEntry(
        signature=sig,
        workload="w",
        gpu="A100",
        variant="mcfuser",
        expr="mhnk",
        tiles={"m": 16},
        optimized=True,
        best_time=1e-5,
        tuning_seconds=1.0,
    )


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestHotTier:
    def test_put_get(self):
        tier = HotTier(capacity=4, ttl=None)
        entry = make_entry("a")
        tier.put("a", entry)
        assert tier.get("a") is entry
        assert "a" in tier and len(tier) == 1

    def test_ttl_expiry(self):
        clock = FakeClock()
        tier = HotTier(capacity=4, ttl=10.0, clock=clock)
        tier.put("a", make_entry("a"))
        clock.now = 9.0
        assert tier.get("a") is not None
        clock.now = 10.5
        assert tier.get("a") is None
        assert tier.expirations == 1
        assert "a" not in tier and len(tier) == 0

    def test_purge_drops_expired_only(self):
        clock = FakeClock()
        tier = HotTier(capacity=4, ttl=10.0, clock=clock)
        tier.put("old", make_entry("old"))
        clock.now = 8.0
        tier.put("new", make_entry("new"))
        clock.now = 12.0  # old is 12s stale, new is 4s
        assert tier.purge() == 1
        assert "new" in tier and "old" not in tier

    def test_lru_eviction(self):
        tier = HotTier(capacity=2, ttl=None)
        tier.put("a", make_entry("a"))
        tier.put("b", make_entry("b"))
        assert tier.get("a") is not None  # refresh a's recency
        tier.put("c", make_entry("c"))  # evicts b, the least recent
        assert "a" in tier and "c" in tier and "b" not in tier
        assert tier.evictions == 1

    def test_capacity_zero_disables(self):
        tier = HotTier(capacity=0, ttl=None)
        tier.put("a", make_entry("a"))
        assert tier.get("a") is None and len(tier) == 0

    def test_bad_knobs_raise(self):
        with pytest.raises(ValueError):
            HotTier(capacity=-1)
        with pytest.raises(ValueError):
            HotTier(ttl=0)


class TestTieredCache:
    @pytest.fixture(scope="class")
    def warmed(self, tmp_path_factory):
        """A persistent ScheduleCache holding one tuned chain."""
        cache_dir = tmp_path_factory.mktemp("tiered")
        base = ScheduleCache(cache_dir)
        chain = gemm_chain(1, 128, 128, 64, 64, name="tiered-g")
        MCFuserTuner(A100, seed=0, cache=base, **QUICK).tune(chain)
        return cache_dir, chain

    def test_lookup_tier_progression(self, warmed):
        """disk -> (promoted) hot; a fresh base cache shows each tier."""
        cache_dir, chain = warmed
        tiered = TieredCache(ScheduleCache(cache_dir))
        sig = tiered.signature_for(chain, A100, "mcfuser")
        entry, tier = tiered.lookup(sig)
        assert entry is not None and tier == "disk"
        entry, tier = tiered.lookup(sig)
        assert tier == "hot"

    def test_memory_tier_label(self, warmed):
        cache_dir, chain = warmed
        base = ScheduleCache(cache_dir)
        tiered = TieredCache(base, capacity=0)  # hot tier disabled
        sig = tiered.signature_for(chain, A100, "mcfuser")
        assert tiered.lookup(sig)[1] == "disk"
        assert tiered.lookup(sig)[1] == "memory"  # ScheduleCache LRU now holds it

    def test_miss(self, warmed):
        cache_dir, _ = warmed
        tiered = TieredCache(ScheduleCache(cache_dir))
        assert tiered.lookup("no-such-signature") == (None, None)

    def test_peek_tiered_labels_without_recording(self, warmed):
        cache_dir, chain = warmed
        base = ScheduleCache(cache_dir)
        sig = base.signature_for(chain, A100, "mcfuser")
        entry, layer = base.peek_tiered(sig)
        assert entry is not None and layer == "disk"
        assert base.peek_tiered("nope") == (None, None)
        base.get(chain, A100)  # promote into the memory LRU
        assert base.peek_tiered(sig)[1] == "memory"
        # peeks recorded nothing beyond the single get()
        assert base.stats().hits == 1 and base.stats().misses == 0

    def test_expired_hot_entry_falls_through(self, warmed):
        cache_dir, chain = warmed
        clock = FakeClock()
        tiered = TieredCache(ScheduleCache(cache_dir), ttl=5.0, clock=clock)
        sig = tiered.signature_for(chain, A100, "mcfuser")
        assert tiered.lookup(sig)[1] == "disk"
        assert tiered.lookup(sig)[1] == "hot"
        clock.now = 6.0  # hot entry stale; lower tiers still serve
        entry, tier = tiered.lookup(sig)
        assert entry is not None and tier == "memory"
        assert tiered.lookup(sig)[1] == "hot"  # re-promoted

    def test_put_writes_through_both_layers(self, tmp_path):
        base = ScheduleCache(tmp_path)
        tiered = TieredCache(base)
        chain = gemm_chain(1, 96, 96, 32, 32, name="wt")
        report = MCFuserTuner(A100, seed=0, **QUICK).tune(chain)
        entry = tiered.put(chain, A100, report)
        assert entry is not None
        assert tiered.lookup(entry.signature)[1] == "hot"
        # the persistent layer got it too: a fresh tiered cache reads disk
        fresh = TieredCache(ScheduleCache(tmp_path))
        assert fresh.lookup(entry.signature)[1] == "disk"

    def test_telemetry_counters(self, warmed):
        cache_dir, chain = warmed
        reg = MetricsRegistry()
        tiered = TieredCache(ScheduleCache(cache_dir), telemetry=reg)
        sig = tiered.signature_for(chain, A100, "mcfuser")
        tiered.lookup("nope")
        tiered.lookup(sig)
        tiered.lookup(sig)
        assert reg.value("serve.cache.misses") == 1
        assert reg.value("serve.cache.hits.disk") == 1
        assert reg.value("serve.cache.hits.hot") == 1

    def test_stats_and_clear(self, tmp_path):
        tiered = TieredCache(ScheduleCache(tmp_path))
        chain = gemm_chain(1, 96, 80, 32, 32, name="st")
        report = MCFuserTuner(A100, seed=0, **QUICK).tune(chain)
        tiered.put(chain, A100, report)
        stats = tiered.stats()
        assert stats["hot_entries"] == 1 and stats["disk_entries"] == 1
        tiered.clear()
        stats = tiered.stats()
        assert stats["hot_entries"] == 0 and stats["disk_entries"] == 0

    def test_defaults_to_memory_only_cache(self):
        tiered = TieredCache()
        assert tiered.stats()["path"] is None
