"""End-to-end observability tests: traced tunes, serving traces, and the
backend-fallback counters — the instrumentation layer exercised through the
real tuner, service, and executor rather than in isolation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.cache import ScheduleCache
from repro.codegen.interpreter import execute_schedule, explain_exec_backend
from repro.obs import (
    enable_tracing,
    get_metrics,
    get_tracer,
    save_chrome_trace,
    trace_coverage,
    validate_chrome_trace,
)
from repro.obs.export import chrome_trace
from repro.search.tuner import MCFuserTuner
from repro.tiling.expr import TilingExpr
from repro.tiling.schedule import build_schedule

QUICK = dict(population_size=64, top_n=4, max_rounds=3, min_rounds=2)


def _spans_by_name(tracer):
    out = {}
    for record in tracer.recorder.spans():
        out.setdefault(record.name, []).append(record)
    return out


class TestTracedTune:
    def test_span_taxonomy_nesting_and_coverage(self, a100, small_gemm):
        tracer = enable_tracing()
        MCFuserTuner(a100, seed=0, **QUICK).tune(small_gemm)
        spans = _spans_by_name(tracer)
        for name in ("tune", "tune.space", "search", "search.round",
                     "measure.batch", "measure.candidate", "tune.finalize"):
            assert name in spans, f"missing span {name}"
        [tune] = spans["tune"]
        assert tune.parent_id is None
        assert tune.attrs["outcome"] == "tuned"
        assert tune.attrs["chain"] == small_gemm.name
        assert tune.attrs["rounds"] >= 2
        by_id = {r.span_id: r for r in tracer.recorder.spans()}
        [search] = spans["search"]
        assert search.parent_id == tune.span_id
        for r in spans["search.round"]:
            assert r.parent_id == search.span_id
            assert r.attrs["measured"] <= r.attrs["proposed"]
        for r in spans["measure.batch"]:
            assert by_id[r.parent_id].name == "search.round"
            # simulated time was billed to the tuning clock during the batch
            assert r.sim_duration is not None and r.sim_duration > 0
        for r in spans["measure.candidate"]:
            assert by_id[r.parent_id].name == "measure.batch"
            assert r.trace_id == tune.trace_id
        # the acceptance bar: direct children of the root account for >= 95%
        assert trace_coverage(tracer.recorder, root_name="tune") >= 0.95

    def test_traced_tune_chrome_export_is_valid(self, a100, small_gemm, tmp_path):
        tracer = enable_tracing()
        MCFuserTuner(a100, seed=0, workers=2, **QUICK).tune(small_gemm)
        path = save_chrome_trace(tracer.recorder, tmp_path / "tune.json")
        import json

        doc = json.load(open(path, encoding="utf-8"))
        validate_chrome_trace(doc)
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] != "M"}
        assert {"tune", "search.round", "measure.batch"} <= names

    def test_pool_measurement_spans_join_the_trace(self, a100, small_gemm):
        tracer = enable_tracing()
        MCFuserTuner(a100, seed=0, workers=4, **QUICK).tune(small_gemm)
        spans = _spans_by_name(tracer)
        [tune] = spans["tune"]
        candidates = spans["measure.candidate"]
        assert {r.trace_id for r in candidates} == {tune.trace_id}
        # with a pool, some candidates measured off the main thread
        assert len({r.thread_id for r in candidates}) >= 1

    def test_cache_hit_outcome(self, a100, small_gemm):
        cache = ScheduleCache(path=None)
        MCFuserTuner(a100, seed=0, cache=cache, **QUICK).tune(small_gemm)
        tracer = enable_tracing()
        MCFuserTuner(a100, seed=0, cache=cache, **QUICK).tune(small_gemm)
        spans = _spans_by_name(tracer)
        [tune] = spans["tune"]
        assert tune.attrs["outcome"] == "cache-hit"
        assert "tune.cache_lookup" in spans
        assert "search" not in spans  # a hit never searches

    def test_untraced_tune_records_nothing(self, a100, small_gemm):
        assert not get_tracer().enabled
        MCFuserTuner(a100, seed=0, **QUICK).tune(small_gemm)
        assert len(get_tracer().recorder) == 0


class TestTracedService:
    def test_request_outcomes_and_cross_thread_parentage(self, a100, small_gemm):
        from repro.serving.service import CompileService

        tracer = enable_tracing()
        with CompileService(a100, workers=1, tuner_kwargs=QUICK) as svc:
            svc.compile(small_gemm)
            svc.compile(small_gemm)
        spans = _spans_by_name(tracer)
        requests = spans["serve.request"]
        assert len(requests) == 2
        outcomes = sorted(r.attrs["outcome"] for r in requests)
        assert outcomes == ["hot", "queued"]
        queued = next(r for r in requests if r.attrs["outcome"] == "queued")
        [serve_tune] = spans["serve.tune"]
        # the worker-side tune continues the admitting request's trace
        assert serve_tune.parent_id == queued.span_id
        assert serve_tune.trace_id == queued.trace_id
        assert serve_tune.thread_id != queued.thread_id
        assert serve_tune.attrs["outcome"] == "tuned"
        # ... and the tuner's own root span nests under it
        [tune] = spans["tune"]
        assert tune.parent_id == serve_tune.span_id
        assert tune.trace_id == queued.trace_id

    def test_coalesced_and_error_outcomes(self, a100, small_gemm):
        import threading

        from repro.serving.service import CompileService

        release = threading.Event()

        def slow_fail(job):
            release.wait(timeout=10)
            raise RuntimeError("tune exploded")

        tracer = enable_tracing()
        with CompileService(a100, workers=1, tune_fn=slow_fail) as svc:
            first = svc.submit(small_gemm)
            import time

            deadline = time.time() + 5
            while not svc._inflight and time.time() < deadline:
                time.sleep(0.005)
            rider = svc.submit(small_gemm)
            release.set()
            with pytest.raises(RuntimeError):
                first.result(timeout=10)
            with pytest.raises(RuntimeError):
                rider.result(timeout=10)
        spans = _spans_by_name(tracer)
        outcomes = sorted(r.attrs["outcome"] for r in spans["serve.request"])
        assert outcomes == ["coalesced", "queued"]
        [serve_tune] = spans["serve.tune"]
        assert serve_tune.attrs["outcome"] == "error"
        assert "tune exploded" in serve_tune.attrs["error"]


class TestExecFallbacks:
    def _schedule(self, chain):
        return build_schedule(
            chain, TilingExpr.parse("mhnk"), {"m": 32, "n": 16, "k": 16, "h": 16}
        )

    def test_no_compiler_reason_counts_and_traces(self, small_gemm, monkeypatch):
        import repro.codegen.clang_runtime as clang_runtime

        monkeypatch.setattr(clang_runtime, "compiler_available", lambda: False)
        schedule = self._schedule(small_gemm)
        inputs = small_gemm.random_inputs(0)
        tracer = enable_tracing()
        execute_schedule(schedule, inputs, backend="auto")
        registry = get_metrics()
        assert registry.counter("exec.fallback").value == 1
        assert registry.counter("exec.fallback.compiled.no-compiler").value == 1
        [exec_span] = _spans_by_name(tracer)["exec"]
        assert exec_span.attrs["resolved"] == "vectorized"
        [(name, _, attrs)] = exec_span.events
        assert name == "exec.fallback"
        assert attrs == {
            "from": "compiled", "to": "vectorized", "reason": "no-compiler"
        }

    def test_flops_threshold_reason(self, small_gemm, monkeypatch):
        import repro.codegen.clang_runtime as clang_runtime

        monkeypatch.setattr(clang_runtime, "compiler_available", lambda: True)
        monkeypatch.setenv("REPRO_COMPILED_MIN_FLOPS", "1e18")
        schedule = self._schedule(small_gemm)
        execute_schedule(schedule, small_gemm.random_inputs(0), backend="auto")
        counters = get_metrics().snapshot()["counters"]
        assert counters["exec.fallback.compiled.flops-threshold"] == 1

    def test_fallback_counts_without_tracing(self, small_gemm, monkeypatch):
        import repro.codegen.clang_runtime as clang_runtime

        monkeypatch.setattr(clang_runtime, "compiler_available", lambda: False)
        schedule = self._schedule(small_gemm)
        assert not get_tracer().enabled
        execute_schedule(schedule, small_gemm.random_inputs(0), backend="auto")
        assert get_metrics().counter("exec.fallback").value == 1

    def test_pinned_backends_do_not_count_fallbacks(self, small_gemm):
        schedule = self._schedule(small_gemm)
        inputs = small_gemm.random_inputs(0)
        out = execute_schedule(schedule, inputs, backend="vectorized")
        np.testing.assert_allclose(
            out[small_gemm.output],
            small_gemm.reference(inputs)[small_gemm.output],
            rtol=1e-4, atol=1e-5,
        )
        assert get_metrics().counter("exec.fallback").value == 0


class TestExplainExecBackend:
    def _schedule(self, chain):
        return build_schedule(
            chain, TilingExpr.parse("mhnk"), {"m": 32, "n": 16, "k": 16, "h": 16}
        )

    def test_scalar_is_direct(self, small_gemm):
        out = explain_exec_backend(self._schedule(small_gemm), "scalar")
        assert out == {"requested": "scalar", "resolved": "scalar", "fallbacks": []}

    def test_auto_reports_reason_chain(self, small_gemm, monkeypatch):
        import repro.codegen.clang_runtime as clang_runtime

        monkeypatch.setattr(clang_runtime, "compiler_available", lambda: False)
        out = explain_exec_backend(self._schedule(small_gemm), "auto")
        assert out["resolved"] == "vectorized"
        assert out["fallbacks"] == [
            {"from": "compiled", "to": "vectorized", "reason": "no-compiler"}
        ]

    def test_pinned_compiled_ignores_flops_threshold(self, small_gemm, monkeypatch):
        import repro.codegen.clang_runtime as clang_runtime

        monkeypatch.setattr(clang_runtime, "compiler_available", lambda: True)
        monkeypatch.setenv("REPRO_COMPILED_MIN_FLOPS", "1e18")
        out = explain_exec_backend(self._schedule(small_gemm), "compiled")
        assert out["resolved"] == "compiled"
        assert out["fallbacks"] == []

    def test_pinned_compiled_without_compiler_never_raises(
        self, small_gemm, monkeypatch
    ):
        import repro.codegen.clang_runtime as clang_runtime

        monkeypatch.setattr(clang_runtime, "compiler_available", lambda: False)
        out = explain_exec_backend(self._schedule(small_gemm), "compiled")
        assert out["resolved"] is None
        assert out["fallbacks"] == [
            {"from": "compiled", "to": "none", "reason": "no-compiler"}
        ]


class TestCompileModelDetail:
    def test_detail_reports_fallback_reasons(self, a100, monkeypatch):
        import repro.codegen.clang_runtime as clang_runtime

        from repro.frontend.executor import compile_model
        from repro.frontend.models import BertConfig, bert_encoder

        monkeypatch.setattr(clang_runtime, "compiler_available", lambda: False)
        graph = bert_encoder(
            BertConfig("Bert-Tiny", layers=1, hidden=256, heads=4, intermediate=512),
            128,
        )
        result = compile_model(
            graph, a100, "mcfuser+relay", seed=0,
            tuner_kwargs=QUICK,
        )
        assert result.mbci_subgraphs > 0
        fallbacks = result.detail["fallbacks"]
        assert sum(fallbacks.values()) >= result.mbci_subgraphs
        assert set(fallbacks) <= {
            "no-compiler", "flops-threshold", "not-renderable", "not-lowerable",
        }
        assert "no-compiler" in fallbacks or "not-lowerable" in fallbacks
        # the breadcrumb agrees: nothing resolved to compiled
        assert "compiled" not in result.detail["exec_backend"]

    def test_traced_compile_model_has_model_spans(self, a100):
        from repro.frontend.executor import compile_model
        from repro.frontend.models import BertConfig, bert_encoder

        tracer = enable_tracing()
        graph = bert_encoder(
            BertConfig("Bert-Tiny", layers=1, hidden=256, heads=4, intermediate=512),
            128,
        )
        compile_model(graph, a100, "mcfuser+relay", seed=0, tuner_kwargs=QUICK)
        spans = _spans_by_name(tracer)
        for name in ("compile.model", "partition", "tune", "execute.model",
                     "compile.schedule"):
            assert name in spans, f"missing span {name}"
        [root] = spans["compile.model"]
        assert root.parent_id is None
        by_id = {r.span_id: r for r in tracer.recorder.spans()}
        [partition] = spans["partition"]
        assert partition.parent_id == root.span_id
        for r in spans["tune"]:
            assert by_id[r.parent_id].name == "compile.model"
        doc = chrome_trace(tracer.recorder)
        validate_chrome_trace(doc)
