"""Tests for the MBCI graph partitioner."""

import pytest

from repro.frontend.grouping import classify_node
from repro.frontend.models import bert_encoder
from repro.frontend.partition import min_footprint_fits, partition_graph
from repro.gpu.specs import A100, GENERIC
from repro.ir.graph import Graph
from repro.ir.ops import Activation, Add, BatchMatmul, BiasAdd, Dense, Scale, Softmax


class TestBertPartition:
    @pytest.fixture(scope="class")
    def partition(self):
        return partition_graph(bert_encoder("Bert-Small", 512), A100)

    def test_one_subgraph_per_layer(self, partition):
        assert len(partition.subgraphs) == 4
        assert all(sg.kind == "attention" for sg in partition.subgraphs)

    def test_chain_shapes_match_table_iii_s1(self, partition):
        chain = partition.subgraphs[0].chain
        assert chain.batch == 8
        assert chain.loops == {"m": 512, "n": 512, "k": 64, "h": 64}

    def test_absorbed_nodes(self, partition):
        sg = partition.subgraphs[0]
        assert len(sg.nodes) == 4  # scores, scaled, probs, context
        assert sg.output.endswith("attn.context")

    def test_rest_excludes_absorbed(self, partition):
        rest_outputs = {n.output for n in partition.rest}
        assert not (rest_outputs & partition.absorbed)
        assert len(partition.rest) + sum(len(s.nodes) for s in partition.subgraphs) == len(
            partition.graph.nodes
        )

    def test_inputs_are_qkv_heads(self, partition):
        sg = partition.subgraphs[0]
        assert all(".heads" in t for t in sg.inputs)


class TestPatternEdgeCases:
    def _attention_graph(self, with_scale=True, fanout=False):
        g = Graph("attn")
        g.add_input("q", (4, 64, 32))
        g.add_input("k", (4, 64, 32))
        g.add_input("v", (4, 64, 32))
        g.add(BatchMatmul(("q", "k"), "s", transpose_b=True))
        cur = "s"
        if with_scale:
            g.add(Scale(("s",), "sc", factor=0.17))
            cur = "sc"
        g.add(Softmax((cur,), "p"))
        g.add(BatchMatmul(("p", "v"), "o"))
        if fanout:
            g.add(Add(("s", "s"), "extra"))  # second consumer of s
        g.mark_output("o")
        return g

    def test_matches_without_scale(self):
        p = partition_graph(self._attention_graph(with_scale=False), A100)
        assert len(p.subgraphs) == 1

    def test_matches_with_scale(self):
        p = partition_graph(self._attention_graph(with_scale=True), A100)
        assert len(p.subgraphs) == 1
        assert len(p.subgraphs[0].nodes) == 4

    def test_fanout_blocks_fusion(self):
        p = partition_graph(self._attention_graph(fanout=True), A100)
        assert len(p.subgraphs) == 0  # s has two consumers -> unsafe to absorb

    def test_gemm_chain_pattern(self):
        g = Graph("gg")
        g.add_input("a", (1, 256, 64))
        g.add_input("b", (1, 64, 256))
        g.add_input("d", (1, 256, 64))
        g.add(BatchMatmul(("a", "b"), "c"))
        g.add(BatchMatmul(("c", "d"), "e"))
        g.mark_output("e")
        p = partition_graph(g, A100)
        assert len(p.subgraphs) == 1
        assert p.subgraphs[0].kind == "gemm_chain"
        assert p.subgraphs[0].chain.loops == {"m": 256, "n": 256, "k": 64, "h": 64}

    def test_compute_bound_chain_skipped(self):
        g = Graph("big")
        g.add_input("a", (1, 4096, 4096))
        g.add_input("b", (1, 4096, 4096))
        g.add_input("d", (1, 4096, 4096))
        g.add(BatchMatmul(("a", "b"), "c"))
        g.add(BatchMatmul(("c", "d"), "e"))
        g.mark_output("e")
        assert partition_graph(g, A100, mbci_only=True).subgraphs == []
        assert len(partition_graph(g, A100, mbci_only=False).subgraphs) == 1


class TestRejectionDiagnostics:
    """Unfused anchors are diagnosed, never silently dropped."""

    def _fanout_graph(self):
        g = Graph("fanout")
        g.add_input("a", (2, 64, 64))
        g.add_input("b", (2, 64, 64))
        g.add_input("d", (2, 64, 64))
        g.add(BatchMatmul(("a", "b"), "c"))
        g.add(BatchMatmul(("c", "d"), "e"))
        g.add(Add(("c", "c"), "probe"))  # second consumer of c
        g.mark_output("e")
        g.mark_output("probe")
        return g

    def test_multi_consumer_intermediate_is_diagnosed(self):
        p = partition_graph(self._fanout_graph(), A100)
        assert p.subgraphs == []
        reasons = {r.anchor: r for r in p.rejected}
        assert reasons["c"].reason == "multi-consumer"
        assert "2 consumers" in reasons["c"].detail

    def test_every_rejection_carries_a_reason(self):
        for graph in (self._fanout_graph(), bert_encoder("Bert-Small", 64)):
            p = partition_graph(graph, A100)
            for rej in p.rejected:
                assert rej.reason and rej.detail, rej
                assert rej.anchor in {n.output for n in graph.nodes}

    def test_rejection_histogram(self):
        p = partition_graph(bert_encoder("Bert-Small", 64), A100)
        # q/k/v/out projections + 2 FFN Denses per layer stop at BiasAdd
        assert p.rejection_reasons() == {"unsupported-op": 24}

    def test_compute_bound_rejection_reason(self):
        g = Graph("big")
        g.add_input("a", (1, 4096, 4096))
        g.add_input("b", (1, 4096, 4096))
        g.add_input("d", (1, 4096, 4096))
        g.add(BatchMatmul(("a", "b"), "c"))
        g.add(BatchMatmul(("c", "d"), "e"))
        g.mark_output("e")
        p = partition_graph(g, A100)
        assert [r.reason for r in p.rejected] == ["compute-bound"]
        assert p.rejected[0].nodes == ("c", "e")

    def test_graph_output_intermediate_blocks_absorption(self):
        g = Graph("marked")
        g.add_input("a", (2, 64, 64))
        g.add_input("b", (2, 64, 64))
        g.add_input("d", (2, 64, 64))
        g.add(BatchMatmul(("a", "b"), "c"))
        g.add(BatchMatmul(("c", "d"), "e"))
        g.mark_output("c")  # c must stay materialized
        g.mark_output("e")
        p = partition_graph(g, A100)
        assert p.subgraphs == []
        reasons = {r.anchor: r for r in p.rejected}
        assert "graph output" in reasons["c"].detail


class TestGeneralGrowth:
    """Structures beyond the legacy patterns."""

    def test_dense_chain_with_epilogue_fuses(self):
        g = Graph("ffn-ish")
        g.add_input("x", (512, 128))
        g.add_param("w1", (128, 256))
        g.add_param("w2", (256, 128))
        g.add(Dense(("x", "w1"), "fc1"))
        g.add(Activation(("fc1",), "act", fn="gelu"))
        g.add(Dense(("act", "w2"), "fc2"))
        g.mark_output("fc2")
        p = partition_graph(g, A100)
        assert len(p.subgraphs) == 1
        sg = p.subgraphs[0]
        assert sg.nodes == ("fc1", "act", "fc2")
        assert sg.chain.blocks[0].epilogue == "gelu"
        assert not sg.batched  # rank-2 Dense group binds with a unit batch

    def test_three_gemm_chain_fuses(self):
        g = Graph("tri")
        g.add_input("a", (2, 128, 64))
        for i, name in enumerate(("b", "d", "f")):
            g.add_input(name, (2, 64, 64))
        g.add(BatchMatmul(("a", "b"), "c"))
        g.add(BatchMatmul(("c", "d"), "e"))
        g.add(BatchMatmul(("e", "f"), "g"))
        g.mark_output("g")
        p = partition_graph(g, A100)
        assert len(p.subgraphs) == 1
        assert p.subgraphs[0].kind == "chain3"
        assert len(p.subgraphs[0].chain.blocks) == 3

    def test_block_budget_stops_growth(self):
        g = Graph("quad")
        g.add_input("a", (2, 128, 64))
        for name in ("b", "d", "f", "i"):
            g.add_input(name, (2, 64, 64))
        g.add(BatchMatmul(("a", "b"), "c"))
        g.add(BatchMatmul(("c", "d"), "e"))
        g.add(BatchMatmul(("e", "f"), "g"))
        g.add(BatchMatmul(("g", "i"), "j"))
        g.mark_output("j")
        p = partition_graph(g, A100)
        # first three fuse, the fourth remains (budget), and is diagnosed
        assert len(p.subgraphs) == 1
        assert len(p.subgraphs[0].chain.blocks) == 3
        assert {r.reason for r in p.rejected} == {"single-block"}
        narrow = partition_graph(g, A100, max_blocks=2)
        assert len(narrow.subgraphs[0].chain.blocks) == 2

    def test_dense_batchmatmul_mix_rejected(self):
        g = Graph("mix")
        g.add_input("a", (2, 64, 64))
        g.add_input("b", (2, 64, 64))
        g.add(BatchMatmul(("a", "b"), "c"))
        # rank-2 Dense cannot join a batched group: c is rank-3
        p = partition_graph(g, A100)
        assert [r.reason for r in p.rejected] == ["single-block"]

    def test_mbci_classification(self):
        g = Graph("cls")
        g.add_input("a", (1, 64, 64))
        g.add_input("b", (1, 64, 64))
        g.add(BatchMatmul(("a", "b"), "c"))
        g.add(Softmax(("c",), "p"))
        node_c, node_p = g.nodes
        assert classify_node(g, node_c, A100).kind == "anchor"
        assert classify_node(g, node_p, A100).kind == "fusable"
        assert classify_node(g, node_p, A100).memory_bound

    def test_footprint_bound_scales_with_gpu(self):
        chain = partition_graph(
            bert_encoder("Bert-Small", 64), A100
        ).subgraphs[0].chain
        assert min_footprint_fits(chain, A100)
        tiny = GENERIC.with_overrides(shared_mem_per_block=512, shared_mem_per_sm=512)
        assert not min_footprint_fits(chain, tiny)
