"""Tests for the MBCI graph partitioner."""

import pytest

from repro.frontend.models import bert_encoder
from repro.frontend.partition import partition_graph
from repro.gpu.specs import A100
from repro.ir.graph import Graph
from repro.ir.ops import Add, BatchMatmul, Scale, Softmax


class TestBertPartition:
    @pytest.fixture(scope="class")
    def partition(self):
        return partition_graph(bert_encoder("Bert-Small", 512), A100)

    def test_one_subgraph_per_layer(self, partition):
        assert len(partition.subgraphs) == 4
        assert all(sg.kind == "attention" for sg in partition.subgraphs)

    def test_chain_shapes_match_table_iii_s1(self, partition):
        chain = partition.subgraphs[0].chain
        assert chain.batch == 8
        assert chain.loops == {"m": 512, "n": 512, "k": 64, "h": 64}

    def test_absorbed_nodes(self, partition):
        sg = partition.subgraphs[0]
        assert len(sg.nodes) == 4  # scores, scaled, probs, context
        assert sg.output.endswith("attn.context")

    def test_rest_excludes_absorbed(self, partition):
        rest_outputs = {n.output for n in partition.rest}
        assert not (rest_outputs & partition.absorbed)
        assert len(partition.rest) + sum(len(s.nodes) for s in partition.subgraphs) == len(
            partition.graph.nodes
        )

    def test_inputs_are_qkv_heads(self, partition):
        sg = partition.subgraphs[0]
        assert all(".heads" in t for t in sg.inputs)


class TestPatternEdgeCases:
    def _attention_graph(self, with_scale=True, fanout=False):
        g = Graph("attn")
        g.add_input("q", (4, 64, 32))
        g.add_input("k", (4, 64, 32))
        g.add_input("v", (4, 64, 32))
        g.add(BatchMatmul(("q", "k"), "s", transpose_b=True))
        cur = "s"
        if with_scale:
            g.add(Scale(("s",), "sc", factor=0.17))
            cur = "sc"
        g.add(Softmax((cur,), "p"))
        g.add(BatchMatmul(("p", "v"), "o"))
        if fanout:
            g.add(Add(("s", "s"), "extra"))  # second consumer of s
        g.mark_output("o")
        return g

    def test_matches_without_scale(self):
        p = partition_graph(self._attention_graph(with_scale=False), A100)
        assert len(p.subgraphs) == 1

    def test_matches_with_scale(self):
        p = partition_graph(self._attention_graph(with_scale=True), A100)
        assert len(p.subgraphs) == 1
        assert len(p.subgraphs[0].nodes) == 4

    def test_fanout_blocks_fusion(self):
        p = partition_graph(self._attention_graph(fanout=True), A100)
        assert len(p.subgraphs) == 0  # s has two consumers -> unsafe to absorb

    def test_gemm_chain_pattern(self):
        g = Graph("gg")
        g.add_input("a", (1, 256, 64))
        g.add_input("b", (1, 64, 256))
        g.add_input("d", (1, 256, 64))
        g.add(BatchMatmul(("a", "b"), "c"))
        g.add(BatchMatmul(("c", "d"), "e"))
        g.mark_output("e")
        p = partition_graph(g, A100)
        assert len(p.subgraphs) == 1
        assert p.subgraphs[0].kind == "gemm_chain"
        assert p.subgraphs[0].chain.loops == {"m": 256, "n": 256, "k": 64, "h": 64}

    def test_compute_bound_chain_skipped(self):
        g = Graph("big")
        g.add_input("a", (1, 4096, 4096))
        g.add_input("b", (1, 4096, 4096))
        g.add_input("d", (1, 4096, 4096))
        g.add(BatchMatmul(("a", "b"), "c"))
        g.add(BatchMatmul(("c", "d"), "e"))
        g.mark_output("e")
        assert partition_graph(g, A100, mbci_only=True).subgraphs == []
        assert len(partition_graph(g, A100, mbci_only=False).subgraphs) == 1
