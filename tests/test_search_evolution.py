"""Unit tests for Algorithm 1 (the heuristic evolutionary search)."""

import pytest

from repro.gpu.occupancy import SharedMemoryExceeded
from repro.gpu.simulator import GPUSimulator
from repro.gpu.specs import A100
from repro.ir.chain import gemm_chain
from repro.search.evolution import heuristic_search
from repro.search.perf_model import AnalyticalModel
from repro.search.space import generate_space


@pytest.fixture(scope="module")
def setup():
    chain = gemm_chain(1, 256, 256, 128, 128, name="evo")
    space = generate_space(chain, A100)
    model = AnalyticalModel(A100)
    sim = GPUSimulator(A100, seed=0)
    schedules = {}

    def sched(c):
        if c.key not in schedules:
            schedules[c.key] = space.schedule_for(c)
        return schedules[c.key]

    def estimate(c):
        return model(sched(c))

    def measure(c):
        try:
            return sim.run(sched(c).kernel_launch(A100))
        except SharedMemoryExceeded:
            return float("inf")

    exhaustive = min(
        t for t in (measure(c) for c in space.candidates) if t != float("inf")
    )
    return space, estimate, measure, exhaustive


class TestSearchQuality:
    def test_finds_near_optimum(self, setup):
        space, estimate, measure, best = setup
        result = heuristic_search(space, estimate, measure, seed=0)
        assert result.best_time <= 1.15 * best

    def test_result_consistent(self, setup):
        space, estimate, measure, _ = setup
        result = heuristic_search(space, estimate, measure, seed=0)
        assert result.best_time == measure(result.best)
        assert result.best.key in result.measured

    def test_deterministic_given_seed(self, setup):
        space, estimate, measure, _ = setup
        a = heuristic_search(space, estimate, measure, seed=3)
        b = heuristic_search(space, estimate, measure, seed=3)
        assert a.best.key == b.best.key
        assert a.num_measurements == b.num_measurements

    def test_measurement_budget(self, setup):
        space, estimate, measure, _ = setup
        result = heuristic_search(space, estimate, measure, top_n=8, max_rounds=16, seed=0)
        assert result.num_measurements <= 8 * 16
        assert result.num_measurements >= 8  # at least one round

    def test_pairs_recorded(self, setup):
        space, estimate, measure, _ = setup
        result = heuristic_search(space, estimate, measure, seed=0)
        assert len(result.pairs) == result.num_measurements
        assert all(e > 0 and m > 0 for e, m in result.pairs)

    def test_convergence_flag(self, setup):
        space, estimate, measure, _ = setup
        result = heuristic_search(space, estimate, measure, epsilon=0.5, min_rounds=2, seed=0)
        assert result.converged
        assert result.rounds <= 4


class TestFailureHandling:
    def test_survives_universal_launch_failure(self, setup):
        space, estimate, _, _ = setup
        result = heuristic_search(
            space, estimate, lambda c: float("inf"), max_rounds=3, seed=0
        )
        assert result.best_time == float("inf")

    def test_recovers_from_partial_failures(self, setup):
        space, estimate, measure, best = setup
        calls = {"n": 0}

        def flaky(c):
            calls["n"] += 1
            if calls["n"] <= 8:  # the whole first round fails
                return float("inf")
            return measure(c)

        result = heuristic_search(space, estimate, flaky, seed=0)
        assert result.best_time != float("inf")

    def test_empty_space_rejected(self, setup):
        space, estimate, measure, _ = setup
        from repro.search.space import SearchSpace

        empty = SearchSpace.from_candidates(
            space.chain, space.gpu, [], space.stats, space.tile_options
        )
        with pytest.raises(ValueError):
            heuristic_search(empty, estimate, measure)

    def test_candidates_frozen(self, setup):
        space, *_ = setup
        assert isinstance(space.candidates, tuple)
        with pytest.raises(AttributeError):
            space.candidates = []
