"""Unit tests for Triton-IR emission and pseudo-PTX lowering."""

import dataclasses

import pytest

from repro.codegen.program import lower_schedule
from repro.codegen.ptx import (
    MMA_K,
    MMA_M,
    MMA_N,
    emit_ptx,
    emit_ptx_from_program,
    mma_count_for_tile,
)
from repro.codegen.render_c import RenderError
from repro.codegen.triton_ir import triton_from_program, triton_from_schedule
from repro.gpu.specs import A100, RTX3080
from repro.ir.chain import attention_chain
from repro.tiling.expr import TilingExpr
from repro.tiling.schedule import build_schedule

TILES = {"m": 32, "n": 16, "k": 16, "h": 16}


@pytest.fixture
def gemm_sched(small_gemm):
    return build_schedule(small_gemm, TilingExpr.parse("mhnk"), TILES)


@pytest.fixture
def attn_sched(small_attention):
    return build_schedule(
        small_attention, TilingExpr.parse("mn(k,h)"), {"m": 32, "n": 16, "k": 32, "h": 32}
    )


class TestTritonIR:
    def test_one_dot_per_block(self, gemm_sched):
        prog = triton_from_schedule(gemm_sched)
        assert prog.count_ops("dot") == 2

    def test_loads_match_inputs(self, gemm_sched):
        prog = triton_from_schedule(gemm_sched)
        assert prog.count_ops("load") == 3  # A, B, D

    def test_dynamic_counts_scale_with_extents(self, gemm_sched):
        prog = triton_from_schedule(gemm_sched)
        # LA/LB in k (5*4 per block), LD in n (5)
        assert prog.dynamic_count("load") == 5 * 4 * 2 + 5

    def test_softmax_op_emitted_for_attention(self, attn_sched):
        prog = triton_from_schedule(attn_sched)
        assert prog.count_ops("softmax_update") == 1

    def test_render_shape(self, gemm_sched):
        text = triton_from_schedule(gemm_sched).render()
        assert "@triton.jit" in text
        assert "tl.program_id" in text
        assert "BLOCK_M: tl.constexpr = 32" in text
        assert "tl.dot" in text
        assert "tl.store" in text

    def test_grid_matches_schedule(self, gemm_sched):
        prog = triton_from_schedule(gemm_sched)
        assert prog.grid == gemm_sched.grid_dims


class TestProgramTriton:
    """triton_from_program: the primary emission entry point, validated
    against the unrolled flat program."""

    def test_matches_schedule_emission(self, gemm_sched):
        program = lower_schedule(gemm_sched)
        assert (
            triton_from_program(program).render()
            == triton_from_schedule(gemm_sched).render()
        )

    def test_dynamic_counts_equal_flat_ops(self, attn_sched):
        program = lower_schedule(attn_sched)
        prog = triton_from_program(program)
        flat = {"load": 0, "compute": 0, "store": 0}
        for op in program.ops:
            flat[op.kind] += 1
        assert prog.dynamic_count("load") == flat["load"]
        assert prog.dynamic_count("dot") == flat["compute"]
        assert prog.dynamic_count("store") == flat["store"]

    def test_tampered_program_rejected(self, gemm_sched):
        program = lower_schedule(gemm_sched)
        tampered = dataclasses.replace(program, ops=program.ops[:-1])
        with pytest.raises(RenderError):
            triton_from_program(tampered)


class TestProgramPTX:
    """emit_ptx_from_program: per-CTA trip counts come from the unrolled
    op list instead of the analytic formula."""

    def test_trips_match_flat_counts(self, gemm_sched):
        program = lower_schedule(gemm_sched)
        ptx = emit_ptx_from_program(program, A100)
        per_cell: dict[tuple[str, str], int] = {}
        for op in program.ops:
            key = (op.kind, op.tensor)
            per_cell[key] = per_cell.get(key, 0) + 1
        for (kind, tensor), trips in per_cell.items():
            verb = {"load": "Load tile", "compute": "Compute", "store": "Store tile"}[kind]
            assert f"{verb} {tensor} x{trips}/CTA" in ptx or f"{verb} {tensor}: " in ptx

    def test_same_structure_as_schedule_emission(self, gemm_sched):
        program = lower_schedule(gemm_sched)
        a = emit_ptx_from_program(program, A100)
        b = emit_ptx(gemm_sched, A100)
        # same declarations; only trip-count comments may differ
        assert a.splitlines()[:12] == b.splitlines()[:12]
        assert a.count("mma.sync") == b.count("mma.sync")


class TestPTX:
    def test_mma_count_formula(self):
        assert mma_count_for_tile(MMA_M, MMA_N, MMA_K) == 1
        assert mma_count_for_tile(32, 16, 32) == 2 * 2 * 2
        assert mma_count_for_tile(17, 9, 17) == 2 * 2 * 2  # ceil division

    def test_entry_and_arch(self, gemm_sched):
        ptx = emit_ptx(gemm_sched, A100)
        assert ".visible .entry" in ptx
        assert ".target sm_80" in ptx

    def test_arch_for_3080(self, gemm_sched):
        assert ".target sm_86" in emit_ptx(gemm_sched, RTX3080)

    def test_shared_decl_matches_measured(self, gemm_sched):
        ptx = emit_ptx(gemm_sched, A100)
        assert f".b8 smem[{gemm_sched.shm_measured(A100)}]" in ptx

    def test_mma_instructions_present(self, gemm_sched):
        ptx = emit_ptx(gemm_sched, A100)
        assert "mma.sync.aligned.m16n8k16" in ptx
        assert "cp.async" in ptx

    def test_softmax_comment_for_attention(self, attn_sched):
        ptx = emit_ptx(attn_sched, A100)
        assert "online softmax" in ptx

    def test_params_cover_io(self, gemm_sched):
        ptx = emit_ptx(gemm_sched, A100)
        for tensor in ("A", "B", "D", "E"):
            assert f"// {tensor}" in ptx
