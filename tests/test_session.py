"""Tests for the Session layer: lazy resource ownership, config plumbing,
behavioral parity with hand-wired tuners, and the one-warning deprecation
contract of every shimmed entry point."""

import warnings

import pytest

from repro.cache.batch import BatchTuner
from repro.cache.cache import ScheduleCache
from repro.config import SessionConfig
from repro.frontend.executor import compile_model
from repro.frontend.models import bert_encoder
from repro.gpu.specs import A100, by_name
from repro.ir.chain import gemm_chain
from repro.search.tuner import MCFuserTuner
from repro.serving.service import CompileService
from repro.session import Session

QUICK = dict(population_size=64, top_n=4, max_rounds=3, min_rounds=2, seed=0)


def quick_config(**extra):
    return SessionConfig.make(cache_enabled=False, **QUICK, **extra)


@pytest.fixture
def chain():
    return gemm_chain(batch=1, m=128, n=64, k=32, h=32, name="G1")


class TestConstruction:
    def test_default_config(self, monkeypatch):
        monkeypatch.delenv("REPRO_SEARCH_SEED", raising=False)
        session = Session()
        assert session.config == SessionConfig.default()
        assert session.gpu.name == by_name("a100").name

    def test_env_reaches_default_session(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEARCH_SEED", "7")
        assert Session().config.search.seed == 7

    def test_rejects_non_config(self):
        with pytest.raises(ValueError, match="SessionConfig"):
            Session(config={"seed": 3})

    def test_gpu_resolved_from_config(self):
        session = Session(SessionConfig.make(gpu="rtx3080", cache_enabled=False))
        assert session.gpu.name == by_name("rtx3080").name

    def test_explicit_gpu_wins(self):
        session = Session(SessionConfig.make(gpu="rtx3080"), gpu=A100)
        assert session.gpu is A100


class TestResourceOwnership:
    def test_cache_none_when_disabled(self):
        assert Session(quick_config()).cache is None

    def test_cache_materialized_once(self, tmp_path):
        session = Session(SessionConfig.make(cache_dir=str(tmp_path), **QUICK))
        cache = session.cache
        assert isinstance(cache, ScheduleCache)
        assert session.cache is cache  # owned singleton

    def test_cost_model_none_when_unguided(self):
        assert Session(quick_config()).cost_model is None

    def test_cost_model_materialized_when_guided(self, tmp_path):
        session = Session(
            SessionConfig.make(cache_dir=str(tmp_path), measure_topk=1, **QUICK)
        )
        model = session.cost_model
        assert model is not None
        assert session.cost_model is model

    def test_metrics_singleton(self):
        session = Session(quick_config())
        assert session.metrics is session.metrics

    def test_tuner_shares_session_resources(self, tmp_path):
        session = Session(SessionConfig.make(cache_dir=str(tmp_path), **QUICK))
        tuner = session.tuner()
        assert tuner.cache is session.cache
        assert tuner.config == session.config

    def test_service_wired_to_session(self, tmp_path):
        session = Session(
            SessionConfig.make(cache_dir=str(tmp_path), serve_workers=2, **QUICK)
        )
        try:
            service = session.service
            assert session.service is service
        finally:
            session.close()

    def test_close_idempotent(self):
        session = Session(quick_config())
        session.close()
        session.close()

    def test_context_manager_closes(self, tmp_path, chain):
        with Session(
            SessionConfig.make(cache_dir=str(tmp_path), serve_workers=2, **QUICK)
        ) as session:
            assert session.service is not None
        # service shut down; a fresh access restarts it
        assert session._service is None


class TestWork:
    def test_tune_matches_hand_wired_tuner(self, chain):
        cfg = quick_config()
        via_session = Session(cfg).tune(chain)
        direct = MCFuserTuner(A100, config=cfg).tune(chain)
        assert via_session.best_time == direct.best_time
        assert (
            via_session.best_candidate.describe() == direct.best_candidate.describe()
        )

    def test_tune_all(self, tmp_path):
        chains = [
            gemm_chain(batch=1, m=128, n=64, k=32, h=32, name="Ga"),
            gemm_chain(batch=1, m=64, n=64, k=32, h=32, name="Gb"),
        ]
        session = Session(SessionConfig.make(cache_dir=str(tmp_path), **QUICK))
        result = session.tune_all(chains, max_workers=2)
        assert len(result.reports) == len(chains)
        assert result.unique + result.duplicates == len(chains)

    def test_compile_model(self, tmp_path):
        session = Session(SessionConfig.make(cache_dir=str(tmp_path), **QUICK))
        result = session.compile(bert_encoder("Bert-Small", 128), strategy="relay")
        assert result.time > 0

    def test_trace_config_enables_tracing(self, tmp_path):
        from repro.obs import disable_tracing, get_tracer

        try:
            session = Session(
                SessionConfig.make(cache_dir=str(tmp_path), trace=True, **QUICK)
            )
            assert session.tracer is get_tracer()
            assert session.tracer.enabled
        finally:
            disable_tracing()


class TestDeprecationShims:
    """Every shimmed entry point warns exactly once, is behavior-identical,
    and stays silent when no legacy knob is passed."""

    def _warnings(self):
        ctx = warnings.catch_warnings(record=True)
        rec = ctx.__enter__()
        warnings.simplefilter("always")
        return ctx, rec

    def test_tuner_warns_exactly_once(self, chain):
        with pytest.warns(DeprecationWarning, match="search.seed") as record:
            MCFuserTuner(A100, seed=3, max_rounds=2, min_rounds=1)
        assert len([w for w in record if w.category is DeprecationWarning]) == 1

    def test_tuner_config_path_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            MCFuserTuner(A100, config=quick_config())

    def test_tuner_shim_behavior_identical(self, chain):
        with pytest.warns(DeprecationWarning):
            legacy = MCFuserTuner(A100, **QUICK).tune(chain)
        modern = MCFuserTuner(A100, config=SessionConfig.make(**QUICK)).tune(chain)
        assert legacy.best_time == modern.best_time

    def test_batch_tuner_warns_exactly_once(self):
        with pytest.warns(DeprecationWarning) as record:
            BatchTuner(A100, seed=3, cache=ScheduleCache(path=None))
        assert len([w for w in record if w.category is DeprecationWarning]) == 1

    def test_service_warns_exactly_once(self):
        with pytest.warns(DeprecationWarning, match="serve.workers") as record:
            service = CompileService(A100, workers=2)
        service.close()
        assert len([w for w in record if w.category is DeprecationWarning]) == 1

    def test_service_config_path_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            service = CompileService(A100, config=quick_config())
        service.close()

    def test_compile_model_warns_exactly_once(self):
        graph = bert_encoder("Bert-Small", 128)
        with pytest.warns(DeprecationWarning, match="search.seed") as record:
            compile_model(graph, A100, "relay", seed=0)
        assert len([w for w in record if w.category is DeprecationWarning]) == 1

    def test_compile_model_config_path_is_silent(self):
        graph = bert_encoder("Bert-Small", 128)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            compile_model(graph, A100, "relay", config=quick_config())
