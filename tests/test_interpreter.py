"""Correctness tests for the NumPy tile interpreter: every valid fused
schedule must reproduce the unfused reference exactly (up to fp32
associativity)."""

import numpy as np
import pytest

from repro.codegen.interpreter import InterpreterError, execute_schedule
from repro.ir.chain import attention_chain, gemm_chain
from repro.tiling.enumeration import all_tilings
from repro.tiling.expr import TilingExpr
from repro.tiling.schedule import InvalidScheduleError, build_schedule


def check(chain, expr, tiles, seed=0, rtol=1e-4, atol=1e-5):
    schedule = build_schedule(chain, TilingExpr.parse(expr), tiles)
    inputs = chain.random_inputs(seed)
    ref = chain.reference(inputs)[chain.output]
    out = execute_schedule(schedule, inputs)[chain.output]
    np.testing.assert_allclose(out, ref, rtol=rtol, atol=atol)


class TestGemmChain:
    def test_deep_nk(self, small_gemm):
        check(small_gemm, "mhnk", {"m": 32, "n": 16, "k": 16, "h": 16})

    def test_full_dim_tiles(self, small_gemm):
        check(small_gemm, "mhnk", {"m": 96, "n": 80, "k": 64, "h": 48})

    def test_minimal_tiles(self, small_gemm):
        check(small_gemm, "mhnk", {"m": 16, "n": 16, "k": 16, "h": 16})

    def test_flat(self, small_gemm):
        check(small_gemm, "mn(k,h)", {"m": 32, "n": 16, "k": 16, "h": 48})

    def test_flat_other_order(self, small_gemm):
        check(small_gemm, "nm(k,h)", {"m": 32, "n": 16, "k": 16, "h": 48})

    def test_kn_with_full_n(self, small_gemm):
        check(small_gemm, "mhkn", {"m": 32, "n": 80, "k": 16, "h": 16})

    def test_kn_with_full_k(self, small_gemm):
        check(small_gemm, "mhkn", {"m": 32, "n": 16, "k": 64, "h": 16})

    def test_ragged_dims_padded(self, ragged_gemm):
        check(ragged_gemm, "mhnk", {"m": 32, "n": 32, "k": 32, "h": 32})

    def test_ragged_flat(self, ragged_gemm):
        check(ragged_gemm, "mn(k,h)", {"m": 48, "n": 16, "k": 32, "h": 64})

    def test_relu_epilogue(self):
        chain = gemm_chain(1, 64, 64, 32, 32, name="relu", epilogue="relu")
        check(chain, "mhnk", {"m": 32, "n": 32, "k": 16, "h": 16})

    def test_gelu_epilogue(self):
        chain = gemm_chain(1, 64, 64, 32, 32, name="gelu", epilogue="gelu")
        check(chain, "mhnk", {"m": 32, "n": 32, "k": 16, "h": 16})

    def test_all_expressions_small(self):
        """Every enumerated expression either runs correctly or is rejected."""
        chain = gemm_chain(1, 64, 48, 32, 48, name="exh")
        tiles = {"m": 16, "n": 16, "k": 16, "h": 16}
        inputs = chain.random_inputs(1)
        ref = chain.reference(inputs)["E"]
        ok = rejected = 0
        for expr in all_tilings(chain):
            schedule = build_schedule(chain, expr, tiles)
            try:
                out = execute_schedule(schedule, inputs)["E"]
            except (InterpreterError, InvalidScheduleError):
                rejected += 1
                continue
            np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-5, err_msg=expr.render())
            ok += 1
        # With generic 16-tiles exactly the nk-class (12 deep perms) runs:
        # the kn-class is order-invalid, flat needs the full-H tile.
        assert ok == 12
        assert ok + rejected == 26


class TestAttention:
    def test_deep_nk(self, small_attention):
        check(small_attention, "mhnk", {"m": 32, "n": 32, "k": 16, "h": 32})

    def test_flat_flashattention_style(self, small_attention):
        check(small_attention, "mn(k,h)", {"m": 32, "n": 16, "k": 32, "h": 32})

    def test_kn_with_full_n(self, small_attention):
        check(small_attention, "mhkn", {"m": 32, "n": 96, "k": 16, "h": 32})

    def test_h_gridsplit(self, small_attention):
        check(small_attention, "mhnk", {"m": 32, "n": 32, "k": 32, "h": 16})

    def test_single_n_tile(self, small_attention):
        check(small_attention, "mhnk", {"m": 32, "n": 96, "k": 32, "h": 32})

    def test_ragged_attention(self):
        chain = attention_chain(2, 100, 84, 24, 40, name="rag-attn")
        check(chain, "mhnk", {"m": 32, "n": 32, "k": 32, "h": 48})

    def test_ragged_attention_flat(self):
        chain = attention_chain(2, 100, 84, 24, 40, name="rag-attn2")
        check(chain, "mn(k,h)", {"m": 48, "n": 16, "k": 32, "h": 48})

    def test_extreme_logits_stable(self):
        """Online softmax must survive large score magnitudes."""
        chain = attention_chain(1, 64, 64, 32, 32, name="ext")
        schedule = build_schedule(
            chain, TilingExpr.parse("mn(k,h)"), {"m": 32, "n": 16, "k": 32, "h": 32}
        )
        inputs = chain.random_inputs(0)
        inputs["Q"] = inputs["Q"] * 40.0  # scores ~ hundreds
        ref = chain.reference(inputs)["O"]
        out = execute_schedule(schedule, inputs)["O"]
        assert np.isfinite(out).all()
        np.testing.assert_allclose(out, ref, rtol=1e-3, atol=1e-5)


class TestRejections:
    def test_invalid_order_rejected(self, small_gemm):
        schedule = build_schedule(
            small_gemm, TilingExpr.parse("mhkn"), {"m": 32, "n": 16, "k": 16, "h": 16}
        )
        with pytest.raises(InvalidScheduleError):
            execute_schedule(schedule, small_gemm.random_inputs(0))

    def test_multicopy_rejected(self, small_gemm):
        schedule = build_schedule(
            small_gemm, TilingExpr.parse("mn(k,h)"), {"m": 32, "n": 16, "k": 16, "h": 16}
        )
        with pytest.raises(InterpreterError):
            execute_schedule(schedule, small_gemm.random_inputs(0))

    def test_missing_input(self, small_gemm):
        schedule = build_schedule(
            small_gemm, TilingExpr.parse("mhnk"), {"m": 32, "n": 16, "k": 16, "h": 16}
        )
        with pytest.raises(KeyError):
            execute_schedule(schedule, {})

    def test_wrong_shape(self, small_gemm):
        schedule = build_schedule(
            small_gemm, TilingExpr.parse("mhnk"), {"m": 32, "n": 16, "k": 16, "h": 16}
        )
        inputs = small_gemm.random_inputs(0)
        inputs["A"] = inputs["A"][:1]
        with pytest.raises(ValueError):
            execute_schedule(schedule, inputs)


class TestIntermediatesAndDeterminism:
    def test_returns_all_outputs(self, small_gemm):
        schedule = build_schedule(
            small_gemm, TilingExpr.parse("mhnk"), {"m": 32, "n": 16, "k": 16, "h": 16}
        )
        out = execute_schedule(schedule, small_gemm.random_inputs(0))
        assert set(out) == {"E"}

    def test_deterministic(self, small_gemm):
        schedule = build_schedule(
            small_gemm, TilingExpr.parse("mhnk"), {"m": 32, "n": 16, "k": 16, "h": 16}
        )
        inputs = small_gemm.random_inputs(0)
        a = execute_schedule(schedule, inputs)["E"]
        b = execute_schedule(schedule, inputs)["E"]
        np.testing.assert_array_equal(a, b)
