"""Unit tests for the graph-level operators."""

import numpy as np
import pytest

from repro.ir.ops import (
    Activation,
    Add,
    BatchMatmul,
    BiasAdd,
    Dense,
    LayerNorm,
    Reshape,
    Scale,
    Softmax,
    Transpose,
)


def rnd(*shape, seed=0):
    return np.random.default_rng(seed).standard_normal(shape).astype(np.float32)


class TestDense:
    shapes = {"x": (8, 16), "w": (16, 32)}

    def test_shape(self):
        assert Dense(("x", "w"), "y").infer_shape(self.shapes) == (8, 32)

    def test_flops(self):
        assert Dense(("x", "w"), "y").flops(self.shapes) == 2 * 8 * 16 * 32

    def test_execute(self):
        x, w = rnd(8, 16), rnd(16, 32, seed=1)
        out = Dense(("x", "w"), "y").execute({"x": x, "w": w})
        np.testing.assert_allclose(out, x @ w, rtol=1e-6)

    def test_compute_intensive(self):
        assert Dense(("x", "w"), "y").compute_intensive

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            Dense(("x", "w"), "y").infer_shape({"x": (8, 15), "w": (16, 32)})

    def test_batched_leading_dims(self):
        shapes = {"x": (2, 8, 16), "w": (16, 4)}
        assert Dense(("x", "w"), "y").infer_shape(shapes) == (2, 8, 4)


class TestBatchMatmul:
    def test_plain(self):
        shapes = {"a": (3, 8, 16), "b": (3, 16, 4)}
        op = BatchMatmul(("a", "b"), "y")
        assert op.infer_shape(shapes) == (3, 8, 4)
        assert op.flops(shapes) == 2 * 3 * 8 * 4 * 16

    def test_transpose_b(self):
        shapes = {"a": (3, 8, 16), "b": (3, 4, 16)}
        op = BatchMatmul(("a", "b"), "y", transpose_b=True)
        assert op.infer_shape(shapes) == (3, 8, 4)

    def test_transpose_a(self):
        shapes = {"a": (3, 16, 8), "b": (3, 16, 4)}
        op = BatchMatmul(("a", "b"), "y", transpose_a=True)
        assert op.infer_shape(shapes) == (3, 8, 4)

    def test_execute_matches_numpy(self):
        a, b = rnd(2, 4, 8), rnd(2, 3, 8, seed=1)
        out = BatchMatmul(("a", "b"), "y", transpose_b=True).execute({"a": a, "b": b})
        np.testing.assert_allclose(out, a @ np.swapaxes(b, 1, 2), rtol=1e-5)

    def test_batch_mismatch(self):
        with pytest.raises(ValueError):
            BatchMatmul(("a", "b"), "y").infer_shape({"a": (2, 4, 8), "b": (3, 8, 4)})

    def test_rank_check(self):
        with pytest.raises(ValueError):
            BatchMatmul(("a", "b"), "y").infer_shape({"a": (4, 8), "b": (8, 4)})


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = rnd(4, 7)
        out = Softmax(("x",), "y").execute({"x": x})
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(4), rtol=1e-6)

    def test_shift_invariance(self):
        x = rnd(4, 7)
        a = Softmax(("x",), "y").execute({"x": x})
        b = Softmax(("x",), "y").execute({"x": x + 100.0})
        np.testing.assert_allclose(a, b, rtol=1e-5)

    def test_shape_and_flops(self):
        op = Softmax(("x",), "y")
        assert op.infer_shape({"x": (4, 7)}) == (4, 7)
        assert op.flops({"x": (4, 7)}) == 5 * 28


class TestElementwise:
    def test_add(self):
        a, b = rnd(3, 3), rnd(3, 3, seed=1)
        np.testing.assert_allclose(Add(("a", "b"), "y").execute({"a": a, "b": b}), a + b)

    def test_add_shape_mismatch(self):
        with pytest.raises(ValueError):
            Add(("a", "b"), "y").infer_shape({"a": (2, 2), "b": (2, 3)})

    def test_bias_add(self):
        x, b = rnd(4, 8), rnd(8)
        np.testing.assert_allclose(BiasAdd(("x", "b"), "y").execute({"x": x, "b": b}), x + b)

    def test_bias_shape_check(self):
        with pytest.raises(ValueError):
            BiasAdd(("x", "b"), "y").infer_shape({"x": (4, 8), "b": (4,)})

    def test_relu(self):
        x = np.array([[-1.0, 2.0]], dtype=np.float32)
        np.testing.assert_allclose(
            Activation(("x",), "y", fn="relu").execute({"x": x}), [[0.0, 2.0]]
        )

    def test_gelu_fixed_points(self):
        x = np.array([0.0], dtype=np.float32)
        assert Activation(("x",), "y", fn="gelu").execute({"x": x})[0] == pytest.approx(0.0)

    def test_unknown_activation(self):
        with pytest.raises(ValueError):
            Activation(("x",), "y", fn="swish")

    def test_scale(self):
        x = rnd(3)
        np.testing.assert_allclose(Scale(("x",), "y", factor=0.5).execute({"x": x}), 0.5 * x)


class TestLayerNorm:
    def test_normalizes(self):
        x = rnd(6, 16)
        gamma, beta = np.ones(16, np.float32), np.zeros(16, np.float32)
        out = LayerNorm(("x", "g", "b"), "y").execute({"x": x, "g": gamma, "b": beta})
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(6), atol=1e-5)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(6), atol=1e-2)


class TestLayout:
    def test_reshape(self):
        x = rnd(4, 6)
        out = Reshape(("x",), "y", shape=(2, 12)).execute({"x": x})
        assert out.shape == (2, 12)

    def test_reshape_count_check(self):
        with pytest.raises(ValueError):
            Reshape(("x",), "y", shape=(5, 5)).infer_shape({"x": (4, 6)})

    def test_reshape_zero_flops(self):
        assert Reshape(("x",), "y", shape=(24,)).flops({"x": (4, 6)}) == 0.0

    def test_transpose(self):
        x = rnd(2, 3, 4)
        op = Transpose(("x",), "y", axes=(1, 0, 2))
        assert op.infer_shape({"x": (2, 3, 4)}) == (3, 2, 4)
        np.testing.assert_allclose(op.execute({"x": x}), np.transpose(x, (1, 0, 2)))

    def test_transpose_bad_axes(self):
        with pytest.raises(ValueError):
            Transpose(("x",), "y", axes=(0, 0, 2)).infer_shape({"x": (2, 3, 4)})
