"""Seeded random operator-DAG generators for partitioner property tests.

Two generators:

* :func:`random_graph` — arbitrary DAGs over the full operator vocabulary
  (contractions, elementwise, softmax, layout ops) with random fanout.
  Used to check partitioner *invariants*: these graphs contain plenty of
  structures the partitioner must refuse, and every refusal must carry a
  diagnosis.
* :func:`pattern_graph` — random compositions of exactly the two legacy
  patterns (attention, GEMM chain) glued with the opaque ops real models
  use between them. Used for *differential parity*: the general
  partitioner must produce the same fusion groups as the legacy oracle.

Both are pure functions of their seed, so failures reproduce exactly.
"""

from __future__ import annotations

import random

from repro.ir.graph import Graph
from repro.ir.ops import (
    Activation,
    Add,
    BatchMatmul,
    LayerNorm,
    Scale,
    Softmax,
    Transpose,
)

__all__ = ["random_graph", "pattern_graph"]

_DIMS = (16, 32, 48, 64, 128)


def random_graph(seed: int, max_ops: int = 14) -> Graph:
    """A random rank-3 operator DAG; pure function of ``seed``.

    All tensors share one batch size so contractions compose. Operands are
    drawn from the whole tensor pool, so multi-consumer fanout (and
    therefore partial fusion and rejections) arises naturally.
    """
    rng = random.Random(seed)
    batch = rng.choice((1, 2, 4))
    g = Graph(f"dag{seed}")
    pool: list[str] = []
    fresh = 0

    def new_input() -> str:
        nonlocal fresh
        name = f"t{fresh}"
        fresh += 1
        g.add_input(name, (batch, rng.choice(_DIMS), rng.choice(_DIMS)))
        pool.append(name)
        return name

    for _ in range(rng.randint(2, 4)):
        new_input()

    n_ops = rng.randint(3, max_ops)
    for i in range(n_ops):
        kind = rng.choices(
            ("bmm", "scale", "softmax", "activation", "add", "transpose", "layernorm"),
            weights=(8, 2, 2, 2, 2, 1, 1),
        )[0]
        t = rng.choice(pool)
        shape = g.shape(t)
        out = f"op{i}"
        if kind == "bmm":
            transpose_a = rng.random() < 0.2
            transpose_b = rng.random() < 0.3
            k = shape[1] if transpose_a else shape[2]
            other_shape = (batch, rng.choice(_DIMS), k) if transpose_b else (
                batch, k, rng.choice(_DIMS)
            )
            # reuse a compatible pool tensor sometimes, else a fresh input
            compatible = [p for p in pool if g.shape(p) == other_shape]
            if compatible and rng.random() < 0.5:
                other = rng.choice(compatible)
            else:
                other = f"t{fresh}"
                fresh += 1
                g.add_input(other, other_shape)
            g.add(BatchMatmul((t, other), out, transpose_a=transpose_a, transpose_b=transpose_b))
        elif kind == "scale":
            g.add(Scale((t,), out, factor=rng.choice((0.5, 0.125, 2.0))))
        elif kind == "softmax":
            g.add(Softmax((t,), out, axis=-1))
        elif kind == "activation":
            g.add(Activation((t,), out, fn=rng.choice(("relu", "gelu", "tanh"))))
        elif kind == "add":
            same = [p for p in pool if g.shape(p) == shape]
            g.add(Add((t, rng.choice(same)), out))
        elif kind == "transpose":
            g.add(Transpose((t,), out, axes=(0, 2, 1)))
        else:  # layernorm
            gamma = f"t{fresh}"
            fresh += 1
            g.add_param(gamma, (shape[-1],))
            beta = f"t{fresh}"
            fresh += 1
            g.add_param(beta, (shape[-1],))
            g.add(LayerNorm((t, gamma, beta), out))
        pool.append(out)

    consumed = {t for node in g.nodes for t in node.inputs}
    sinks = [node.output for node in g.nodes if node.output not in consumed]
    for s in sinks or [g.nodes[-1].output]:
        g.mark_output(s)
    return g


def pattern_graph(seed: int, max_patterns: int = 4) -> Graph:
    """Random stack of the two legacy patterns, glued like real models do.

    Each pattern is followed by an opaque op (Transpose / Add / LayerNorm)
    or ends the graph — never by an op the general partitioner could fold —
    so the legacy oracle and the general partitioner must agree exactly.
    """
    rng = random.Random(seed)
    g = Graph(f"pattern{seed}")
    fresh = 0

    def inp(shape: tuple[int, ...]) -> str:
        nonlocal fresh
        name = f"in{fresh}"
        fresh += 1
        g.add_input(name, shape)
        return name

    outputs: list[str] = []
    for p in range(rng.randint(1, max_patterns)):
        batch = rng.choice((1, 4, 8))
        m, n = rng.choice(_DIMS), rng.choice(_DIMS)
        k, h = rng.choice(_DIMS[:4]), rng.choice(_DIMS[:4])
        # occasionally huge, to exercise the compute-bound rejection on
        # both partitioners identically
        if rng.random() < 0.15:
            m = n = k = h = 2048
        prefix = f"p{p}"
        if rng.random() < 0.5:  # attention
            q = inp((batch, m, k))
            kk = inp((batch, n, k))
            v = inp((batch, n, h))
            s = g.add(BatchMatmul((q, kk), f"{prefix}.s", transpose_b=True))
            cur = s
            if rng.random() < 0.7:
                cur = g.add(Scale((cur,), f"{prefix}.sc", factor=k**-0.5))
            cur = g.add(Softmax((cur,), f"{prefix}.p", axis=-1))
            cur = g.add(BatchMatmul((cur, v), f"{prefix}.o"))
        else:  # GEMM chain
            a = inp((batch, m, k))
            b = inp((batch, k, n))
            d = inp((batch, n, h))
            c = g.add(BatchMatmul((a, b), f"{prefix}.c"))
            cur = g.add(BatchMatmul((c, d), f"{prefix}.e"))
        glue = rng.choice(("none", "transpose", "add"))
        if glue == "transpose":
            cur = g.add(Transpose((cur,), f"{prefix}.t", axes=(0, 2, 1)))
        elif glue == "add":
            cur = g.add(Add((cur, cur), f"{prefix}.a"))
        outputs.append(cur)
    for out in outputs:
        g.mark_output(out)
    return g
