"""Cache ↔ tuner/executor/CLI integration: hits, round-trips, regressions."""

import numpy as np
import pytest

from repro.cache import ScheduleCache
from repro.cli import main
from repro.codegen.interpreter import execute_schedule
from repro.frontend.executor import compile_model
from repro.frontend.partition import partition_graph
from repro.gpu.specs import A100
from repro.ir.chain import gemm_chain
from repro.ir.graph import Graph
from repro.ir.ops import BatchMatmul, Softmax
from repro.search.tuner import MCFuserTuner

QUICK = dict(population_size=64, top_n=4, max_rounds=2, min_rounds=1)


def quick_tuner(cache=None, variant="mcfuser"):
    return MCFuserTuner(A100, variant=variant, seed=0, cache=cache, **QUICK)


def make_chain():
    return gemm_chain(1, 128, 128, 64, 64, name="cache-g")


class TestTunerCacheHit:
    @pytest.fixture(scope="class")
    def warm(self, tmp_path_factory):
        """Tune once cold into a persistent cache; yield (cache_dir, report)."""
        cache_dir = tmp_path_factory.mktemp("schedcache")
        cache = ScheduleCache(cache_dir)
        report = quick_tuner(cache).tune(make_chain())
        return cache_dir, cache, report

    def test_cold_run_is_not_a_hit(self, warm):
        _, _, cold = warm
        assert not cold.cache_hit
        assert cold.search.num_measurements > 0

    def test_second_tune_performs_no_enumeration(self, warm):
        """Regression: a warm tune() must never build a search space.

        ``build_space`` is the single entry into enumeration + pruning; we
        replace it with a tripwire and require tune() to succeed anyway.
        """
        _, cache, cold = warm
        tuner = quick_tuner(cache)

        def tripwire(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("cache hit must not enumerate a search space")

        tuner.build_space = tripwire
        report = tuner.tune(make_chain())
        assert report.cache_hit
        assert report.search.num_measurements == 0
        assert report.search.num_estimates == 0
        assert report.pruning.after_rule4 == 0
        assert report.tuning_seconds == 0.0

    def test_hit_reproduces_the_tuned_schedule(self, warm):
        _, cache, cold = warm
        hit = quick_tuner(cache).tune(make_chain())
        assert hit.best_candidate.key == cold.best_candidate.key
        assert hit.best_time == cold.best_time
        assert hit.best_schedule.describe() == cold.best_schedule.describe()

    def test_hit_schedule_is_numerically_correct(self, warm):
        _, cache, _ = warm
        report = quick_tuner(cache).tune(make_chain())
        chain = report.chain
        inputs = chain.random_inputs(0)
        out = execute_schedule(report.best_schedule, inputs)[chain.output]
        ref = chain.reference(inputs)[chain.output]
        np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-5)

    def test_disk_round_trip_across_cache_instances(self, warm):
        """A fresh ScheduleCache on the same directory (≈ a new process)
        must serve the hit from disk."""
        cache_dir, _, cold = warm
        fresh = ScheduleCache(cache_dir)
        report = quick_tuner(fresh).tune(make_chain())
        assert report.cache_hit
        assert report.best_time == cold.best_time

    def test_stats_report_the_hit(self, warm):
        cache_dir, _, _ = warm
        fresh = ScheduleCache(cache_dir)
        quick_tuner(fresh).tune(make_chain())
        stats = fresh.stats()
        assert stats.hits == 1 and stats.misses == 0
        assert stats.total_hits >= 1
        assert stats.disk_entries == 1
        assert stats.hit_rate == 1.0

    def test_variants_do_not_alias(self, warm):
        """A chimera tune of the same workload must miss the mcfuser entry."""
        _, cache, _ = warm
        report = quick_tuner(cache, variant="chimera").tune(make_chain())
        assert not report.cache_hit


class TestMemoryOnlyCache:
    def test_hit_without_disk(self):
        cache = ScheduleCache(path=None)
        cold = quick_tuner(cache).tune(make_chain())
        warm = quick_tuner(cache).tune(make_chain())
        assert not cold.cache_hit and warm.cache_hit
        assert cache.stats().path is None and cache.stats().disk_entries == 0

    def test_clear_forgets(self):
        cache = ScheduleCache(path=None)
        quick_tuner(cache).tune(make_chain())
        cache.clear()
        again = quick_tuner(cache).tune(make_chain())
        assert not again.cache_hit

    def test_put_rejects_nonfinite_times(self):
        cache = ScheduleCache(path=None)
        report = quick_tuner().tune(make_chain())
        report.best_time = float("inf")
        assert cache.put(report.chain, A100, report) is None
        assert cache.get(report.chain, A100) is None


def _tiny_attention_graph() -> Graph:
    g = Graph("tiny")
    g.add_input("q", (4, 64, 32))
    g.add_input("k", (4, 64, 32))
    g.add_input("v", (4, 64, 32))
    g.add(BatchMatmul(("q", "k"), "s", transpose_b=True))
    g.add(Softmax(("s",), "p"))
    g.add(BatchMatmul(("p", "v"), "o"))
    g.mark_output("o")
    return g


class TestExecutorCache:
    def test_recompile_hits_cache(self, tmp_path):
        graph = _tiny_attention_graph()
        cache = ScheduleCache(tmp_path)
        cold = compile_model(graph, A100, "mcfuser+relay", tuner_kwargs=QUICK, cache=cache)
        warm = compile_model(graph, A100, "mcfuser+relay", tuner_kwargs=QUICK, cache=cache)
        assert cold.detail["cache_hits"] == 0
        assert warm.detail["cache_hits"] == warm.mbci_subgraphs == 1
        assert warm.tuning_seconds < cold.tuning_seconds
        assert warm.time == cold.time  # same kernels either way

    def test_partition_cache_split(self, tmp_path):
        graph = _tiny_attention_graph()
        cache = ScheduleCache(tmp_path)
        partition = partition_graph(graph, A100)
        cached, uncached = partition.cache_split(cache, A100)
        assert not cached and len(uncached) == 1
        compile_model(graph, A100, "mcfuser+relay", tuner_kwargs=QUICK, cache=cache)
        cached, uncached = partition.cache_split(cache, A100)
        assert len(cached) == 1 and not uncached


class TestCLICache:
    def test_tune_twice_then_stats_reports_hit(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "clicache")
        assert main(["tune", "G1", "--cache-dir", cache_dir]) == 0
        cold_out = capsys.readouterr().out
        assert "cache: hit" not in cold_out

        assert main(["tune", "G1", "--cache-dir", cache_dir]) == 0
        warm_out = capsys.readouterr().out
        assert "cache: hit" in warm_out
        assert "0 measurements" in warm_out
        # the schedule is reprinted identically from the cache
        assert "Compute(tile E)" in warm_out

        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        stats_out = capsys.readouterr().out
        assert "total hits: 1" in stats_out
        assert "entries: 1" in stats_out
        assert "G1" in stats_out

    def test_no_cache_flag_bypasses(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "clicache2")
        assert main(["tune", "G1", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["tune", "G1", "--no-cache", "--cache-dir", cache_dir]) == 0
        assert "cache: hit" not in capsys.readouterr().out

    def test_cache_clear(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "clicache3")
        assert main(["tune", "G1", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "cleared 1" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "entries: 0" in capsys.readouterr().out

    def test_cache_warmup(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "clicache4")
        assert main([
            "cache", "warmup", "G1", "G1", "S1",
            "--cache-dir", cache_dir, "--jobs", "2",
            "--population", "64", "--max-rounds", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "warmed 2 unique workload(s)" in out
        assert "1 duplicate(s)" in out
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "entries: 2" in capsys.readouterr().out
