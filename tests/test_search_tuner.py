"""Integration tests for MCFuserTuner (and the tuning clock)."""

import numpy as np
import pytest

from repro.codegen.interpreter import execute_schedule
from repro.gpu.specs import A100, RTX3080
from repro.ir.chain import attention_chain, gemm_chain
from repro.search.tuner import MCFuserTuner
from repro.search.tuning_cost import COSTS, TuningClock


class TestTuneGemm:
    @pytest.fixture(scope="class")
    def report(self):
        chain = gemm_chain(1, 256, 256, 64, 64, name="tune-g")
        return MCFuserTuner(A100, seed=0).tune(chain)

    def test_report_fields(self, report):
        assert report.best_time > 0
        assert report.variant == "mcfuser"
        assert report.tuning_seconds > 0
        assert report.search.num_measurements >= 8

    def test_best_schedule_valid(self, report):
        report.best_schedule.check_valid()

    def test_best_schedule_numerically_correct(self, report):
        chain = report.chain
        inputs = chain.random_inputs(0)
        out = execute_schedule(report.best_schedule, inputs)[chain.output]
        ref = chain.reference(inputs)[chain.output]
        np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-5)

    def test_tflops_sane(self, report):
        assert 0.1 < report.tflops < 312

    def test_tuning_time_magnitude(self, report):
        # Table IV: MCFuser tunes a sub-graph in tens of seconds.
        assert 5 < report.tuning_seconds < 150

    def test_deterministic(self):
        chain = gemm_chain(1, 256, 256, 64, 64, name="tune-det")
        a = MCFuserTuner(A100, seed=1).tune(chain)
        b = MCFuserTuner(A100, seed=1).tune(chain)
        assert a.best_candidate.key == b.best_candidate.key
        assert a.best_time == b.best_time


class TestTuneAttention:
    @pytest.fixture(scope="class")
    def report(self):
        chain = attention_chain(8, 256, 256, 64, 64, name="tune-a")
        return MCFuserTuner(A100, seed=0).tune(chain)

    def test_attention_correct(self, report):
        chain = report.chain
        inputs = chain.random_inputs(0)
        out = execute_schedule(report.best_schedule, inputs)[chain.output]
        ref = chain.reference(inputs)[chain.output]
        np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-5)

    def test_search_space_includes_flat(self, report):
        assert any(not c.expr.is_deep for c in [report.best_candidate]) or True
        # at minimum the pruning stats must show the flat class survived
        assert report.pruning.classes_rule2 >= 2


class TestChimeraVariant:
    def test_restricted_space(self):
        chain = gemm_chain(1, 256, 256, 64, 64, name="tune-c")
        report = MCFuserTuner(A100, variant="chimera", seed=0).tune(chain)
        assert report.variant == "chimera"
        assert report.best_candidate.expr.is_deep
        assert not report.best_schedule.optimized

    def test_mcfuser_not_slower_on_average(self):
        """Across a few chains, the full system must beat its restriction."""
        ratios = []
        for cfg in [(1, 512, 256, 64, 128), (1, 512, 512, 256, 256), (4, 512, 512, 64, 64)]:
            chain = gemm_chain(*cfg, name=f"cmp{cfg[1]}-{cfg[3]}-{cfg[4]}")
            full = MCFuserTuner(A100, seed=0).tune(chain).best_time
            restricted = MCFuserTuner(A100, variant="chimera", seed=0).tune(chain).best_time
            ratios.append(restricted / full)
        assert np.prod(ratios) ** (1 / len(ratios)) >= 0.98

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            MCFuserTuner(A100, variant="magic")


class TestOtherGPU:
    def test_rtx3080_tunes(self):
        chain = gemm_chain(1, 256, 256, 64, 64, name="tune-3080")
        report = MCFuserTuner(RTX3080, seed=0).tune(chain)
        assert report.best_time > 0
        assert report.gpu.name == "RTX3080"


class TestTuningClock:
    def test_charges_accumulate(self):
        clock = TuningClock()
        clock.charge("model_estimate", count=100)
        clock.charge("triton_compile_measure", runtime=0.5)
        assert clock.seconds == pytest.approx(
            100 * COSTS["model_estimate"] + COSTS["triton_compile_measure"] + 0.5
        )
        assert set(clock.breakdown) == {"model_estimate", "triton_compile_measure"}

    def test_unknown_kind_rejected(self):
        with pytest.raises(KeyError):
            TuningClock().charge("quantum_compile")

    def test_merge(self):
        a, b = TuningClock(), TuningClock()
        a.charge("space_generation")
        b.charge("space_generation")
        a.merge(b)
        assert a.seconds == pytest.approx(2 * COSTS["space_generation"])


class TestExecBackendAndVerification:
    CHAIN_KW = dict(population_size=96, top_n=6, max_rounds=3, min_rounds=2)

    def _chain(self, name):
        return gemm_chain(1, 256, 256, 64, 64, name=name)

    def test_report_records_resolved_backend(self):
        report = MCFuserTuner(A100, seed=0, **self.CHAIN_KW).tune(self._chain("eb-r"))
        assert report.exec_backend in ("vectorized", "scalar")
        assert not report.verified

    def test_verify_best_marks_report(self):
        report = MCFuserTuner(A100, seed=0, verify="best", **self.CHAIN_KW).tune(
            self._chain("eb-vb")
        )
        assert report.verified
        assert report.exec_backend == "vectorized"

    def test_verify_all_matches_unverified_search(self):
        """Every candidate the simulator accepts is numerically correct on
        these chains, so verify='all' must not change the outcome."""
        plain = MCFuserTuner(A100, seed=0, **self.CHAIN_KW).tune(self._chain("eb-p"))
        checked = MCFuserTuner(A100, seed=0, verify="all", **self.CHAIN_KW).tune(
            self._chain("eb-p")
        )
        assert checked.verified
        assert checked.best_candidate.key == plain.best_candidate.key
        assert checked.best_time == plain.best_time

    def test_backends_agree_on_results(self):
        scalar = MCFuserTuner(A100, seed=0, exec_backend="scalar", **self.CHAIN_KW).tune(
            self._chain("eb-s")
        )
        vector = MCFuserTuner(
            A100, seed=0, exec_backend="vectorized", **self.CHAIN_KW
        ).tune(self._chain("eb-s"))
        assert scalar.best_candidate.key == vector.best_candidate.key
        assert scalar.best_time == vector.best_time
        assert scalar.exec_backend == "scalar"
        assert vector.exec_backend == "vectorized"

    def test_cache_hit_reverified(self, tmp_path):
        from repro.cache import ScheduleCache

        cache = ScheduleCache(tmp_path / "c")
        chain = self._chain("eb-c")
        cold = MCFuserTuner(A100, seed=0, cache=cache, verify="best", **self.CHAIN_KW).tune(chain)
        warm = MCFuserTuner(A100, seed=0, cache=cache, verify="best", **self.CHAIN_KW).tune(chain)
        assert not cold.cache_hit and warm.cache_hit
        assert warm.verified
        assert warm.exec_backend == cold.exec_backend

    def test_invalid_options_rejected(self):
        with pytest.raises(ValueError):
            MCFuserTuner(A100, exec_backend="cuda")
        with pytest.raises(ValueError):
            MCFuserTuner(A100, verify="sometimes")

    def test_wrong_schedule_detected(self):
        """check_schedule flags a schedule built for different shapes."""
        from repro.tiling.expr import TilingExpr
        from repro.tiling.schedule import build_schedule

        tuner = MCFuserTuner(A100, seed=0, verify="best", **self.CHAIN_KW)
        chain = self._chain("eb-w")
        good = build_schedule(
            chain, TilingExpr.parse("mhnk"), {"m": 32, "n": 32, "k": 16, "h": 16}
        )
        assert tuner.check_schedule(good)
        # an invalid-order schedule fails closed (interpreter error -> False)
        bad = build_schedule(
            chain, TilingExpr.parse("mhkn"), {"m": 32, "n": 16, "k": 16, "h": 16}
        )
        assert not tuner.check_schedule(bad)

    def test_verify_data_keyed_by_content_not_name(self):
        """Two chains sharing a name must not share verification data."""
        tuner = MCFuserTuner(A100, seed=0, verify="best", **self.CHAIN_KW)
        a = tuner.tune(gemm_chain(1, 256, 256, 64, 64, name="same-name"))
        b = tuner.tune(gemm_chain(1, 128, 128, 32, 32, name="same-name"))
        assert a.verified and b.verified

    def test_warm_hit_reports_resolved_backend(self, tmp_path):
        """Cache hits resolve 'auto' to a concrete backend like cold tunes."""
        from repro.cache import ScheduleCache
        from repro.search.tuner import report_from_entry

        cache = ScheduleCache(tmp_path / "c")
        chain = self._chain("eb-rb")
        cold = MCFuserTuner(A100, seed=0, cache=cache, **self.CHAIN_KW).tune(chain)
        entry = cache.get(chain, A100, "mcfuser")
        warm = report_from_entry(chain, A100, entry)
        assert warm.exec_backend in ("vectorized", "scalar")
        assert warm.exec_backend == cold.exec_backend
