"""Integration tests for MCFuserTuner (and the tuning clock)."""

import numpy as np
import pytest

from repro.codegen.interpreter import execute_schedule
from repro.gpu.specs import A100, RTX3080
from repro.ir.chain import attention_chain, gemm_chain
from repro.search.tuner import MCFuserTuner
from repro.search.tuning_cost import COSTS, TuningClock


class TestTuneGemm:
    @pytest.fixture(scope="class")
    def report(self):
        chain = gemm_chain(1, 256, 256, 64, 64, name="tune-g")
        return MCFuserTuner(A100, seed=0).tune(chain)

    def test_report_fields(self, report):
        assert report.best_time > 0
        assert report.variant == "mcfuser"
        assert report.tuning_seconds > 0
        assert report.search.num_measurements >= 8

    def test_best_schedule_valid(self, report):
        report.best_schedule.check_valid()

    def test_best_schedule_numerically_correct(self, report):
        chain = report.chain
        inputs = chain.random_inputs(0)
        out = execute_schedule(report.best_schedule, inputs)[chain.output]
        ref = chain.reference(inputs)[chain.output]
        np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-5)

    def test_tflops_sane(self, report):
        assert 0.1 < report.tflops < 312

    def test_tuning_time_magnitude(self, report):
        # Table IV: MCFuser tunes a sub-graph in tens of seconds.
        assert 5 < report.tuning_seconds < 150

    def test_deterministic(self):
        chain = gemm_chain(1, 256, 256, 64, 64, name="tune-det")
        a = MCFuserTuner(A100, seed=1).tune(chain)
        b = MCFuserTuner(A100, seed=1).tune(chain)
        assert a.best_candidate.key == b.best_candidate.key
        assert a.best_time == b.best_time


class TestTuneAttention:
    @pytest.fixture(scope="class")
    def report(self):
        chain = attention_chain(8, 256, 256, 64, 64, name="tune-a")
        return MCFuserTuner(A100, seed=0).tune(chain)

    def test_attention_correct(self, report):
        chain = report.chain
        inputs = chain.random_inputs(0)
        out = execute_schedule(report.best_schedule, inputs)[chain.output]
        ref = chain.reference(inputs)[chain.output]
        np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-5)

    def test_search_space_includes_flat(self, report):
        assert any(not c.expr.is_deep for c in [report.best_candidate]) or True
        # at minimum the pruning stats must show the flat class survived
        assert report.pruning.classes_rule2 >= 2


class TestChimeraVariant:
    def test_restricted_space(self):
        chain = gemm_chain(1, 256, 256, 64, 64, name="tune-c")
        report = MCFuserTuner(A100, variant="chimera", seed=0).tune(chain)
        assert report.variant == "chimera"
        assert report.best_candidate.expr.is_deep
        assert not report.best_schedule.optimized

    def test_mcfuser_not_slower_on_average(self):
        """Across a few chains, the full system must beat its restriction."""
        ratios = []
        for cfg in [(1, 512, 256, 64, 128), (1, 512, 512, 256, 256), (4, 512, 512, 64, 64)]:
            chain = gemm_chain(*cfg, name=f"cmp{cfg[1]}-{cfg[3]}-{cfg[4]}")
            full = MCFuserTuner(A100, seed=0).tune(chain).best_time
            restricted = MCFuserTuner(A100, variant="chimera", seed=0).tune(chain).best_time
            ratios.append(restricted / full)
        assert np.prod(ratios) ** (1 / len(ratios)) >= 0.98

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            MCFuserTuner(A100, variant="magic")


class TestOtherGPU:
    def test_rtx3080_tunes(self):
        chain = gemm_chain(1, 256, 256, 64, 64, name="tune-3080")
        report = MCFuserTuner(RTX3080, seed=0).tune(chain)
        assert report.best_time > 0
        assert report.gpu.name == "RTX3080"


class TestTuningClock:
    def test_charges_accumulate(self):
        clock = TuningClock()
        clock.charge("model_estimate", count=100)
        clock.charge("triton_compile_measure", runtime=0.5)
        assert clock.seconds == pytest.approx(
            100 * COSTS["model_estimate"] + COSTS["triton_compile_measure"] + 0.5
        )
        assert set(clock.breakdown) == {"model_estimate", "triton_compile_measure"}

    def test_unknown_kind_rejected(self):
        with pytest.raises(KeyError):
            TuningClock().charge("quantum_compile")

    def test_merge(self):
        a, b = TuningClock(), TuningClock()
        a.charge("space_generation")
        b.charge("space_generation")
        a.merge(b)
        assert a.seconds == pytest.approx(2 * COSTS["space_generation"])
