"""Property-based tests: fused execution == reference for random problem
sizes, tile sizes and expressions (the core soundness invariant)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen.interpreter import InterpreterError, execute_schedule
from repro.ir.chain import attention_chain, gemm_chain
from repro.tiling.enumeration import all_tilings
from repro.tiling.expr import TilingExpr
from repro.tiling.schedule import InvalidScheduleError, build_schedule

dims = st.integers(2, 5).map(lambda x: x * 16)  # 32..80, multiples of 16
ragged = st.integers(20, 70)
tile_pick = st.sampled_from([16, 32, 48, 64])


def _run_and_compare(chain, expr, tiles):
    schedule = build_schedule(chain, expr, tiles)
    try:
        out = execute_schedule(schedule, chain.random_inputs(0))[chain.output]
    except (InterpreterError, InvalidScheduleError):
        return  # correctly rejected candidates are fine
    ref = chain.reference(chain.random_inputs(0))[chain.output]
    np.testing.assert_allclose(out, ref, rtol=2e-4, atol=1e-5)


@settings(max_examples=25, deadline=None)
@given(m=dims, n=dims, k=dims, h=dims, tm=tile_pick, tn=tile_pick, tk=tile_pick, th=tile_pick)
def test_gemm_chain_fused_equals_reference(m, n, k, h, tm, tn, tk, th):
    chain = gemm_chain(1, m, n, k, h, name=f"p{m}{n}{k}{h}")
    tiles = {"m": tm, "n": tn, "k": tk, "h": th}
    _run_and_compare(chain, TilingExpr.parse("mhnk"), tiles)


@settings(max_examples=15, deadline=None)
@given(m=ragged, n=ragged, k=ragged, h=ragged, tm=tile_pick, tn=tile_pick)
def test_ragged_gemm_chain_padding_correct(m, n, k, h, tm, tn):
    chain = gemm_chain(1, m, n, k, h, name=f"r{m}{n}{k}{h}")
    tiles = {"m": tm, "n": tn, "k": 32, "h": 32}
    _run_and_compare(chain, TilingExpr.parse("mhnk"), tiles)


@settings(max_examples=15, deadline=None)
@given(m=dims, n=dims, k=st.sampled_from([16, 32]), h=st.sampled_from([16, 32]),
       tm=tile_pick, tn=tile_pick)
def test_attention_fused_equals_reference(m, n, k, h, tm, tn):
    chain = attention_chain(2, m, n, k, h, name=f"a{m}{n}{k}{h}")
    # FlashAttention-style flat tiling: full k/h extents per block.
    tiles = {"m": tm, "n": tn, "k": max(16, k), "h": max(16, h)}
    _run_and_compare(chain, TilingExpr.parse("mn(k,h)"), tiles)


@settings(max_examples=10, deadline=None)
@given(idx=st.integers(0, 25), tm=tile_pick, th=tile_pick)
def test_any_expression_runs_or_rejects(idx, tm, th):
    chain = gemm_chain(1, 64, 48, 32, 48, name="pexh")
    expr = all_tilings(chain)[idx]
    tiles = {"m": tm, "n": 16, "k": 16, "h": th}
    _run_and_compare(chain, expr, tiles)


@settings(max_examples=10, deadline=None)
@given(tm=tile_pick, tn=tile_pick, tk=tile_pick, th=tile_pick)
def test_optimized_and_unoptimized_agree(tm, tn, tk, th):
    """The extent-1 DAG optimization must never change results."""
    chain = gemm_chain(1, 64, 64, 32, 32, name="popt")
    tiles = {"m": tm, "n": tn, "k": tk, "h": th}
    inputs = chain.random_inputs(0)
    outs = []
    for optimize in (False, True):
        schedule = build_schedule(chain, TilingExpr.parse("mhnk"), tiles, optimize=optimize)
        try:
            outs.append(execute_schedule(schedule, inputs)["E"])
        except (InterpreterError, InvalidScheduleError):
            outs.append(None)
    if outs[0] is not None and outs[1] is not None:
        np.testing.assert_allclose(outs[0], outs[1], rtol=1e-5, atol=1e-6)
    assert outs[1] is not None  # optimized form of nk must always run
