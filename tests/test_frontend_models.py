"""Tests for the end-to-end model builders."""

import numpy as np
import pytest

from repro.frontend.models import BERT_CONFIGS, bert_encoder, mlp_mixer, vit_encoder
from repro.ir.ops import BatchMatmul, Dense, Softmax


class TestBertEncoder:
    @pytest.fixture(scope="class")
    def graph(self):
        return bert_encoder("Bert-Small", seq_len=128)

    def test_configs(self):
        assert BERT_CONFIGS["Bert-Base"].layers == 12
        assert BERT_CONFIGS["Bert-Base"].head_dim == 64
        assert BERT_CONFIGS["Bert-Large"].heads == 16

    def test_output_shape(self, graph):
        assert graph.shape(graph.outputs[0]) == (128, 512)

    def test_attention_ops_per_layer(self, graph):
        bmms = [n for n in graph.nodes if isinstance(n.op, BatchMatmul)]
        softmaxes = [n for n in graph.nodes if isinstance(n.op, Softmax)]
        assert len(bmms) == 2 * 4  # 2 per layer x 4 layers
        assert len(softmaxes) == 4

    def test_attention_shapes_match_table_iii(self, graph):
        scores = next(n for n in graph.nodes if n.output.endswith("attn.scores"))
        assert graph.shape(scores.output) == (8, 128, 128)  # heads x seq x seq

    def test_flops_scale_with_layers(self):
        small = bert_encoder("Bert-Small", 128).total_flops()
        base = bert_encoder("Bert-Base", 128).total_flops()
        assert base > 2.5 * small

    def test_executes_numerically(self):
        graph = bert_encoder("Bert-Small", seq_len=32)
        env = graph.execute(graph.random_feed(seed=0, scale=0.05))
        out = env[graph.outputs[0]]
        assert out.shape == (32, 512)
        assert np.isfinite(out).all()

    def test_attention_probabilities_normalized(self):
        graph = bert_encoder("Bert-Small", seq_len=32)
        env = graph.execute(graph.random_feed(seed=0, scale=0.05))
        probs = env["layer0.attn.probs"]
        np.testing.assert_allclose(probs.sum(axis=-1), np.ones((8, 32)), rtol=1e-5)


class TestOtherModels:
    def test_vit_variants(self):
        g = vit_encoder("ViT-Base", tokens=64)
        assert g.shape(g.outputs[0]) == (64, 768)

    def test_vit_huge_head_dim(self):
        g = vit_encoder("ViT-Huge", tokens=32)
        scores = next(n for n in g.nodes if n.output.endswith("attn.scores"))
        # 1280 hidden / 16 heads = 80 — the S6 shape.
        assert g.shape("layer0.attn.q.heads") == (16, 32, 80)

    def test_mlp_mixer_runs(self):
        g = mlp_mixer(tokens=64, channels=32, layers=2, token_inner=16)
        env = g.execute(g.random_feed(seed=1, scale=0.05))
        assert env[g.outputs[0]].shape == (64, 32)

    def test_mixer_token_mlp_is_gemm_chain_shape(self):
        g = mlp_mixer(tokens=128, channels=64, layers=1, token_inner=32)
        fc1 = next(n for n in g.nodes if n.output.endswith("tok.fc1"))
        assert g.shape(fc1.output) == (64, 32)  # channels x inner after transpose
