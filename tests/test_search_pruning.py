"""Unit tests for the four pruning rules (§III-C)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gpu.specs import A100
from repro.ir.chain import gemm_chain
from repro.search.pruning import (
    MIN_TILE,
    RULE4_SLACK,
    expression_classes,
    rule2_candidate_ok,
    rule2_class_survives,
    rule3_tile_options,
    rule4_ok,
    unconstrained_tile_count,
)
from repro.tiling.expr import TilingExpr
from repro.tiling.schedule import build_schedule


class TestRule1:
    def test_gemm_chain_three_classes(self, small_gemm):
        classes = expression_classes(small_gemm)
        assert set(classes) == {"nk", "kn", "n(k,h)"}

    def test_representatives_are_canonical(self, small_gemm):
        classes = expression_classes(small_gemm)
        assert classes["nk"].render() == "mhnk"
        assert classes["kn"].render() == "mhkn"
        assert classes["n(k,h)"].render() == "mn(k,h)"

    def test_representative_same_class(self, small_gemm):
        from repro.tiling.enumeration import sub_tiling_expr

        for key, rep in expression_classes(small_gemm).items():
            assert sub_tiling_expr(small_gemm, rep).render() == key


class TestRule2:
    def test_nk_survives(self, small_gemm):
        rep = expression_classes(small_gemm)["nk"]
        assert rule2_class_survives(small_gemm, rep)

    def test_kn_pruned(self, small_gemm):
        rep = expression_classes(small_gemm)["kn"]
        assert not rule2_class_survives(small_gemm, rep)

    def test_flat_survives_at_class_level(self, small_gemm):
        rep = expression_classes(small_gemm)["n(k,h)"]
        assert rule2_class_survives(small_gemm, rep)

    def test_candidate_level_flat_needs_full_h(self, small_gemm):
        rep = expression_classes(small_gemm)["n(k,h)"]
        partial = build_schedule(small_gemm, rep, {"m": 32, "n": 16, "k": 16, "h": 16})
        full = build_schedule(small_gemm, rep, {"m": 32, "n": 16, "k": 16, "h": 48})
        assert not rule2_candidate_ok(partial)
        assert rule2_candidate_ok(full)


class TestRule3:
    def test_pow2_only_divisors(self):
        assert rule3_tile_options(1024) == [16, 32, 64, 128, 256, 512, 1024]

    def test_pow2_512(self):
        assert rule3_tile_options(512) == [16, 32, 64, 128, 256, 512]

    def test_non_pow2_padding_limit(self):
        opts = rule3_tile_options(80)
        assert 16 in opts and 80 in opts
        assert 32 not in opts  # would pad 80 -> 96, ratio 0.2 > 0.05

    def test_tiny_dimension_padded(self):
        assert rule3_tile_options(8) == [16]

    def test_exact_multiples_allowed_for_non_pow2(self):
        opts = rule3_tile_options(96)
        assert opts == [16, 32, 48, 96]

    def test_all_multiples_of_16(self):
        for size in (48, 80, 100, 256, 1000):
            assert all(t % MIN_TILE == 0 for t in rule3_tile_options(size))

    def test_unconstrained_count(self):
        assert unconstrained_tile_count(1024) == 64
        assert unconstrained_tile_count(512) == 32
        assert unconstrained_tile_count(1) == 1

    @given(st.integers(1, 4096))
    def test_options_within_unconstrained(self, size):
        opts = rule3_tile_options(size)
        assert len(opts) >= 1
        assert len(opts) <= max(unconstrained_tile_count(size), 1)

    @given(st.integers(16, 2048))
    def test_padding_ratio_bounded(self, size):
        from repro.utils import ceil_div

        for t in rule3_tile_options(size):
            padded = ceil_div(size, t) * t
            if not (size & (size - 1)) == 0:  # non-pow2
                assert (padded - size) / size < 0.05 or len(rule3_tile_options(size)) == 1


class TestRule4:
    def test_small_tiles_pass(self, small_gemm):
        s = build_schedule(
            small_gemm, TilingExpr.parse("mhnk"), {"m": 16, "n": 16, "k": 16, "h": 16}
        )
        assert rule4_ok(s, A100)

    def test_huge_tiles_fail(self):
        chain = gemm_chain(1, 1024, 1024, 512, 512)
        s = build_schedule(
            chain, TilingExpr.parse("mhnk"), {"m": 512, "n": 512, "k": 128, "h": 128}
        )
        assert not rule4_ok(s, A100)

    def test_slack_factor(self, small_gemm):
        s = build_schedule(
            small_gemm, TilingExpr.parse("mhnk"), {"m": 96, "n": 80, "k": 64, "h": 48}
        )
        est = s.shm_estimate()
        tight = A100.with_overrides(
            shared_mem_per_block=int(est / RULE4_SLACK) + 1,
            shared_mem_per_sm=max(int(est / RULE4_SLACK) + 1, 164 * 1024),
        )
        assert rule4_ok(s, tight)
        tighter = A100.with_overrides(
            shared_mem_per_block=int(est / RULE4_SLACK) - 100,
            shared_mem_per_sm=164 * 1024,
        )
        assert not rule4_ok(s, tighter)
