"""Unit tests for the four pruning rules (§III-C)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gpu.specs import A100
from repro.ir.chain import gemm_chain
from repro.search.pruning import (
    MIN_TILE,
    PADDING_RATIO_LIMIT,
    RULE4_SLACK,
    bucket_tile_options,
    expression_classes,
    padding_ratio,
    rule2_candidate_ok,
    rule2_class_survives,
    rule3_tile_options,
    rule4_ok,
    tile_legal_for_bucket,
    unconstrained_tile_count,
)
from repro.tiling.expr import TilingExpr
from repro.tiling.schedule import build_schedule


class TestRule1:
    def test_gemm_chain_three_classes(self, small_gemm):
        classes = expression_classes(small_gemm)
        assert set(classes) == {"nk", "kn", "n(k,h)"}

    def test_representatives_are_canonical(self, small_gemm):
        classes = expression_classes(small_gemm)
        assert classes["nk"].render() == "mhnk"
        assert classes["kn"].render() == "mhkn"
        assert classes["n(k,h)"].render() == "mn(k,h)"

    def test_representative_same_class(self, small_gemm):
        from repro.tiling.enumeration import sub_tiling_expr

        for key, rep in expression_classes(small_gemm).items():
            assert sub_tiling_expr(small_gemm, rep).render() == key


class TestRule2:
    def test_nk_survives(self, small_gemm):
        rep = expression_classes(small_gemm)["nk"]
        assert rule2_class_survives(small_gemm, rep)

    def test_kn_pruned(self, small_gemm):
        rep = expression_classes(small_gemm)["kn"]
        assert not rule2_class_survives(small_gemm, rep)

    def test_flat_survives_at_class_level(self, small_gemm):
        rep = expression_classes(small_gemm)["n(k,h)"]
        assert rule2_class_survives(small_gemm, rep)

    def test_candidate_level_flat_needs_full_h(self, small_gemm):
        rep = expression_classes(small_gemm)["n(k,h)"]
        partial = build_schedule(small_gemm, rep, {"m": 32, "n": 16, "k": 16, "h": 16})
        full = build_schedule(small_gemm, rep, {"m": 32, "n": 16, "k": 16, "h": 48})
        assert not rule2_candidate_ok(partial)
        assert rule2_candidate_ok(full)


class TestRule3:
    def test_pow2_only_divisors(self):
        assert rule3_tile_options(1024) == [16, 32, 64, 128, 256, 512, 1024]

    def test_pow2_512(self):
        assert rule3_tile_options(512) == [16, 32, 64, 128, 256, 512]

    def test_non_pow2_padding_limit(self):
        opts = rule3_tile_options(80)
        assert 16 in opts and 80 in opts
        assert 32 not in opts  # would pad 80 -> 96, ratio 0.2 > 0.05

    def test_tiny_dimension_exact_divisors(self):
        # sub-16 dims admit exact divisor tiles, never a lone padded
        # tile of 16 that wastes half the block
        assert rule3_tile_options(8) == [1, 2, 4, 8]
        assert rule3_tile_options(12) == [1, 2, 3, 4, 6, 12]
        assert rule3_tile_options(1) == [1]
        assert rule3_tile_options(7) == [1, 7]

    def test_exact_multiples_allowed_for_non_pow2(self):
        opts = rule3_tile_options(96)
        assert opts == [16, 32, 48, 96]

    def test_all_multiples_of_16(self):
        for size in (48, 80, 100, 256, 1000):
            assert all(t % MIN_TILE == 0 for t in rule3_tile_options(size))

    @pytest.mark.parametrize(
        "size, expected",
        [
            # pow2: exact divisor tiles only, 16..size
            (16, [16]),
            (64, [16, 32, 64]),
            (256, [16, 32, 64, 128, 256]),
            # non-pow2: multiples of 16 within the 5% padded-waste budget
            (48, [16, 48]),
            (80, [16, 80]),
            (96, [16, 32, 48, 96]),
            (100, [112]),  # nothing within 5%; single padded fallback
            (1000, [16, 32, 48, 64, 80, 112, 128, 144, 208, 256, 336, 512]),
            # sub-16: exact divisors of the dimension itself
            (2, [1, 2]),
            (6, [1, 2, 3, 6]),
            (15, [1, 3, 5, 15]),
        ],
    )
    def test_rule3_table(self, size, expected):
        assert rule3_tile_options(size) == expected

    @given(st.integers(1, 4096))
    def test_no_padding_when_waste_free_divisor_exists(self, size):
        # regression (issue 8 satellite): when a waste-free divisor tile
        # exists, no admitted candidate may waste more than 5% padding
        opts = rule3_tile_options(size)
        has_waste_free = any(padding_ratio(size, t) == 0.0 for t in opts)
        if has_waste_free:
            assert all(padding_ratio(size, t) <= PADDING_RATIO_LIMIT for t in opts)

    def test_padding_ratio_is_padded_relative(self):
        # waste measured against the padded extent, boundary inclusive
        assert padding_ratio(96, 16) == 0.0
        assert padding_ratio(80, 32) == pytest.approx(16 / 96)
        # 304 -> tile 160 pads to 320: 16/320 = 0.05 exactly -> admitted
        # (the boundary is inclusive, and the old size-relative metric
        # would have read 16/304 ≈ 0.053 and rejected it)
        assert padding_ratio(304, 160) == pytest.approx(0.05)
        assert 160 in rule3_tile_options(304)

    def test_unconstrained_count(self):
        assert unconstrained_tile_count(1024) == 64
        assert unconstrained_tile_count(512) == 32
        assert unconstrained_tile_count(1) == 1

    @given(st.integers(1, 4096))
    def test_options_within_unconstrained(self, size):
        opts = rule3_tile_options(size)
        assert len(opts) >= 1
        if size >= MIN_TILE:
            # the paper's space accounting (multiples of 16); sub-16 dims
            # draw from exact divisors instead, a different pool
            assert len(opts) <= max(unconstrained_tile_count(size), 1)

    @given(st.integers(16, 2048))
    def test_padding_ratio_bounded(self, size):
        # waste is relative to the *padded* extent, boundary inclusive;
        # the lone fallback tile is exempt (nothing fit the budget)
        opts = rule3_tile_options(size)
        for t in opts:
            if not (size & (size - 1)) == 0:  # non-pow2
                assert padding_ratio(size, t) <= PADDING_RATIO_LIMIT or len(opts) == 1


class TestBucketTiles:
    def test_bucket_options_are_ceiling_divisors(self):
        for ceiling in (16, 64, 512, 1024):
            opts = bucket_tile_options(ceiling)
            assert opts == rule3_tile_options(ceiling)
            assert all(ceiling % t == 0 for t in opts)

    def test_bucket_ceiling_must_be_pow2_multiple_of_16(self):
        with pytest.raises(ValueError):
            bucket_tile_options(100)
        with pytest.raises(ValueError):
            bucket_tile_options(8)

    def test_tile_legal_for_bucket(self):
        assert tile_legal_for_bucket(64, 512)
        assert tile_legal_for_bucket(512, 512)
        assert not tile_legal_for_bucket(96, 512)  # not a divisor
        assert not tile_legal_for_bucket(1024, 512)  # exceeds ceiling
        assert not tile_legal_for_bucket(0, 512)

    @given(st.sampled_from([16, 32, 64, 128, 256, 512, 1024]), st.data())
    def test_in_bucket_lengths_never_overrun_ceiling(self, ceiling, data):
        # legality argument: for any in-bucket length, every admitted
        # ceiling tile pads the length to at most the ceiling itself
        from repro.utils import ceil_div

        length = data.draw(st.integers(ceiling // 2 + 1, ceiling))
        for t in bucket_tile_options(ceiling):
            assert ceil_div(length, t) * t <= ceiling


class TestRule4:
    def test_small_tiles_pass(self, small_gemm):
        s = build_schedule(
            small_gemm, TilingExpr.parse("mhnk"), {"m": 16, "n": 16, "k": 16, "h": 16}
        )
        assert rule4_ok(s, A100)

    def test_huge_tiles_fail(self):
        chain = gemm_chain(1, 1024, 1024, 512, 512)
        s = build_schedule(
            chain, TilingExpr.parse("mhnk"), {"m": 512, "n": 512, "k": 128, "h": 128}
        )
        assert not rule4_ok(s, A100)

    def test_slack_factor(self, small_gemm):
        s = build_schedule(
            small_gemm, TilingExpr.parse("mhnk"), {"m": 96, "n": 80, "k": 64, "h": 48}
        )
        est = s.shm_estimate()
        tight = A100.with_overrides(
            shared_mem_per_block=int(est / RULE4_SLACK) + 1,
            shared_mem_per_sm=max(int(est / RULE4_SLACK) + 1, 164 * 1024),
        )
        assert rule4_ok(s, tight)
        tighter = A100.with_overrides(
            shared_mem_per_block=int(est / RULE4_SLACK) - 100,
            shared_mem_per_sm=164 * 1024,
        )
        assert not rule4_ok(s, tighter)
