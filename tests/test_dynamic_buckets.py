"""Shape-bucketed dynamic-shape serving (issue 8).

A workload whose sequence-length loops vary request-to-request is tuned
once per power-of-two bucket, at the bucket *ceiling*; every in-bucket
length re-expands the ceiling tiling decision on its own chain (tail
tiles masked by the execution backends, never silently padded). These
tests cover the bucket key (``bucketed_signature``), the tuner's
exact → bucket → miss ladder, cache-hit re-verification at the actual
request shape, and the serving layer's bucket hits / coalescing across
different in-bucket lengths.
"""

import numpy as np
import pytest

from repro.cache import ScheduleCache
from repro.cache.signature import (
    BUCKET_MIN,
    bucket_dims,
    bucket_of,
    bucketed_signature,
    workload_signature,
)
from repro.codegen.interpreter import execute_schedule
from repro.gpu.specs import A100, RTX3080
from repro.ir.chain import attention_chain, gemm_chain
from repro.search.tuner import MCFuserTuner, VerificationError, rebind_report
from repro.serving import CompileService, MetricsRegistry, TieredCache

QUICK = dict(population_size=64, top_n=4, max_rounds=2, min_rounds=1)

#: Request outcomes that terminate a ticket, bucket hits included.
OUTCOMES = (
    "serve.hits.hot",
    "serve.hits.memory",
    "serve.hits.disk",
    "serve.hits.bucket",
    "serve.coalesced",
    "serve.tunes",
    "serve.shed",
    "serve.errors",
)


def ragged(m: int, name: str | None = None):
    """A gemm chain whose only varying extent is the sequence length m."""
    return gemm_chain(1, m, 96, 32, 32, name=name or f"dyn-{m}")


def quick_tuner(**kwargs) -> MCFuserTuner:
    kwargs.setdefault("seed", 0)
    return MCFuserTuner(A100, dynamic="buckets", **QUICK, **kwargs)


def outcome_sum(registry: MetricsRegistry) -> int:
    counters = registry.snapshot()["counters"]
    return sum(counters.get(name, 0) for name in OUTCOMES)


class TestBucketOf:
    def test_powers_of_two_are_their_own_ceiling(self):
        for size in (16, 32, 64, 512, 1024):
            assert bucket_of(size) == size

    def test_lengths_round_up(self):
        assert bucket_of(17) == 32
        assert bucket_of(100) == 128
        assert bucket_of(513) == 1024

    def test_floor_is_bucket_min(self):
        assert BUCKET_MIN == 16
        for size in (1, 2, 15, 16):
            assert bucket_of(size) == 16

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            bucket_of(0)

    def test_half_open_interval(self):
        # lengths in (ceiling/2, ceiling] share a bucket
        assert bucket_of(64) == 64
        assert bucket_of(65) == 128
        assert bucket_of(128) == 128

    def test_bucket_dims_ignores_absent_loops(self):
        chain = ragged(100)
        assert bucket_dims(chain, ("m", "q")) == {"m": 128}
        assert bucket_dims(chain) == {"m": 128, "n": 128}


class TestBucketedSignature:
    def test_same_bucket_same_signature(self):
        assert bucketed_signature(ragged(300), A100) == bucketed_signature(
            ragged(400), A100
        )

    def test_different_bucket_different_signature(self):
        assert bucketed_signature(ragged(300), A100) != bucketed_signature(
            ragged(600), A100
        )

    def test_never_aliases_exact_signature(self):
        # even a chain already sitting at its bucket ceiling must key
        # differently bucketed vs exact (the entries mean different things)
        chain = ragged(512)
        assert bucketed_signature(chain, A100) != workload_signature(chain, A100)

    def test_static_loops_still_distinguish(self):
        a = gemm_chain(1, 300, 96, 32, 32)
        b = gemm_chain(1, 300, 96, 64, 32)  # different head dim k
        assert bucketed_signature(a, A100) != bucketed_signature(b, A100)

    def test_gpu_and_variant_distinguish(self):
        chain = ragged(300)
        assert bucketed_signature(chain, A100) != bucketed_signature(chain, RTX3080)
        assert bucketed_signature(chain, A100, "mcfuser") != bucketed_signature(
            chain, A100, "chimera"
        )

    def test_dynamic_loop_selection_matters(self):
        chain = ragged(300)
        assert bucketed_signature(chain, A100, dynamic_loops=("m",)) != (
            bucketed_signature(chain, A100, dynamic_loops=("m", "n"))
        )


class TestWithLoops:
    def test_override(self):
        chain = ragged(300)
        ceiling = chain.with_loops({"m": 512})
        assert ceiling.loops["m"] == 512
        assert ceiling.loops["n"] == chain.loops["n"]
        assert ceiling.name == chain.name
        assert chain.loops["m"] == 300  # original untouched

    def test_unknown_loop_rejected(self):
        with pytest.raises(KeyError, match="unknown loop"):
            ragged(300).with_loops({"zz": 64})


class TestTunerLadder:
    def test_cold_tune_stores_under_bucket_key(self):
        cache = ScheduleCache(path=None)
        tuner = quick_tuner(cache=cache)
        chain = ragged(300)
        report = tuner.tune(chain)
        assert report.dynamic == "buckets"
        assert report.bucket == {"m": 512, "n": 128}
        assert not report.cache_hit and not report.bucket_hit
        # the report is rebound to the request shape...
        assert report.best_schedule.chain.loops["m"] == 300
        # ...but the stored entry is the ceiling decision under the bucket key
        entry, _ = cache.lookup(tuner.bucket_signature(chain))
        assert entry is not None
        assert dict(entry.tiles) == dict(report.best_schedule.tiles)

    def test_in_bucket_length_is_a_bucket_hit(self):
        cache = ScheduleCache(path=None)
        tuner = quick_tuner(cache=cache)
        cold = tuner.tune(ragged(300))
        warm = tuner.tune(ragged(400))  # same bucket (257..512]
        assert warm.cache_hit and warm.bucket_hit
        assert warm.bucket == {"m": 512, "n": 128}
        assert warm.best_schedule.chain.loops["m"] == 400
        assert dict(warm.best_schedule.tiles) == dict(cold.best_schedule.tiles)

    def test_new_bucket_tunes_again(self):
        cache = ScheduleCache(path=None)
        tuner = quick_tuner(cache=cache)
        tuner.tune(ragged(300))
        fresh = tuner.tune(ragged(600))  # bucket 1024
        assert not fresh.cache_hit and not fresh.bucket_hit
        assert fresh.bucket["m"] == 1024

    def test_exact_hit_preferred_over_bucket(self):
        cache = ScheduleCache(path=None)
        tuner = quick_tuner(cache=cache)
        plain = MCFuserTuner(A100, cache=cache, seed=0, **QUICK)
        chain = ragged(300)
        plain.tune(chain)  # stores under the exact key
        report = tuner.tune(chain)
        assert report.cache_hit and not report.bucket_hit

    def test_ceiling_tiles_divide_the_ceiling(self):
        tuner = quick_tuner(cache=ScheduleCache(path=None))
        report = tuner.tune(ragged(300))
        tiles = report.best_schedule.tiles
        for loop, ceiling in report.bucket.items():
            assert ceiling % tiles[loop] == 0, (loop, tiles[loop], ceiling)

    def test_bucket_hit_result_is_numerically_correct(self):
        cache = ScheduleCache(path=None)
        tuner = quick_tuner(cache=cache)
        tuner.tune(ragged(320))
        warm = tuner.tune(ragged(275))
        chain = warm.best_schedule.chain
        inputs = chain.random_inputs(0)
        ref = chain.reference(inputs)[chain.output]
        out = execute_schedule(warm.best_schedule, inputs, backend="scalar")[
            chain.output
        ]
        np.testing.assert_allclose(out, ref, rtol=1e-3, atol=1e-4)

    def test_dynamic_off_unchanged(self):
        cache = ScheduleCache(path=None)
        tuner = MCFuserTuner(A100, cache=cache, seed=0, **QUICK)
        report = tuner.tune(ragged(300))
        assert report.dynamic == "off" and report.bucket == {}
        assert cache.lookup(bucketed_signature(ragged(300), A100))[0] is None

    def test_unknown_dynamic_mode_rejected(self):
        with pytest.raises(ValueError, match="dynamic"):
            MCFuserTuner(A100, dynamic="padding")

    def test_rebind_report_roundtrip(self):
        tuner = quick_tuner(cache=ScheduleCache(path=None))
        report = tuner.tune(ragged(300))
        short = ragged(260)
        rebound = rebind_report(report, short)
        assert rebound.best_schedule.chain.loops["m"] == 260
        assert rebound.chain is short


class TestBucketHitVerification:
    """Satellite: ``verify="best"`` on a cache/bucket hit must re-run at
    the *actual request shape*, not the shape the entry was tuned at."""

    def test_bucket_hit_verified_at_request_shape(self, monkeypatch):
        cache = ScheduleCache(path=None)
        quick_tuner(cache=cache).tune(ragged(320))  # ceiling 512 entry

        tuner = quick_tuner(cache=cache, verify="best")
        seen = []
        real_check = MCFuserTuner.check_schedule

        def spy(self, schedule):
            seen.append(dict(schedule.chain.loops))
            return real_check(self, schedule)

        monkeypatch.setattr(MCFuserTuner, "check_schedule", spy)
        report = tuner.tune(ragged(275))
        assert report.bucket_hit and report.verified
        # verification executed the schedule at m=275, not at the 512 ceiling
        assert seen == [{"m": 275, "n": 96, "k": 32, "h": 32}]

    def test_corrupt_bucket_entry_raises_at_request_shape(self, monkeypatch):
        cache = ScheduleCache(path=None)
        quick_tuner(cache=cache).tune(ragged(320))
        tuner = quick_tuner(cache=cache, verify="best")
        monkeypatch.setattr(
            MCFuserTuner, "check_schedule", lambda self, schedule: False
        )
        with pytest.raises(VerificationError, match="disagrees"):
            tuner.tune(ragged(275))


class TestServiceBuckets:
    def test_bucket_hit_served_warm(self):
        registry = MetricsRegistry()
        with CompileService(
            A100, workers=1, dynamic="buckets", telemetry=registry,
            tuner_kwargs=QUICK,
        ) as svc:
            cold = svc.compile(ragged(300))
            warm = svc.compile(ragged(400))
        assert cold.source == "tuned"
        assert warm.source == "bucket"
        assert warm.report.bucket_hit and warm.report.cache_hit
        assert warm.report.best_schedule.chain.loops["m"] == 400
        counters = registry.snapshot()["counters"]
        assert counters["serve.hits.bucket"] == 1
        assert counters["serve.tunes"] == 1
        assert outcome_sum(registry) == counters["serve.requests"] == 2

    def test_exact_entry_beats_bucket_entry(self):
        """Entries written under exact keys (e.g. by a pre-bucketing
        deployment sharing the cache) win the first ladder rung."""
        tiered = TieredCache()
        with CompileService(A100, workers=1, tuner_kwargs=QUICK, cache=tiered) as off:
            off.compile(ragged(300))
        with CompileService(
            A100, workers=1, dynamic="buckets", tuner_kwargs=QUICK, cache=tiered
        ) as svc:
            again = svc.compile(ragged(300))
        assert again.source == "hot"
        assert not again.report.bucket_hit

    def test_repeat_requests_serve_from_the_bucket_key(self):
        """Under pure bucketing all entries live under bucket keys, so
        even an exact-shape repeat is labelled a bucket hit (and is still
        hot-tier fast)."""
        with CompileService(
            A100, workers=1, dynamic="buckets", tuner_kwargs=QUICK
        ) as svc:
            svc.compile(ragged(300))
            again = svc.compile(ragged(300))
        assert again.source == "bucket"
        assert again.report.best_schedule.chain.loops["m"] == 300

    def test_coalescing_across_in_bucket_lengths(self):
        """Concurrent requests for different lengths of one bucket share a
        single ceiling tune; every rider's report is rebound to its own
        shape and computes the right numbers."""
        lengths = (270, 300, 400, 511)
        registry = MetricsRegistry()
        with CompileService(
            A100, workers=1, dynamic="buckets", telemetry=registry,
            tuner_kwargs=QUICK,
        ) as svc:
            # submits are microseconds, the ceiling tune is seconds: all
            # four land while the first job is still in flight
            tickets = [svc.submit(ragged(m)) for m in lengths]
            results = [t.result(timeout=120) for t in tickets]
        counters = registry.snapshot()["counters"]
        assert counters["serve.tunes"] == 1
        assert counters["serve.coalesced"] == len(lengths) - 1
        for m, result in zip(lengths, results):
            chain = result.report.best_schedule.chain
            assert chain.loops["m"] == m
            inputs = chain.random_inputs(0)
            ref = chain.reference(inputs)[chain.output]
            out = execute_schedule(
                result.report.best_schedule, inputs, backend="scalar"
            )[chain.output]
            np.testing.assert_allclose(out, ref, rtol=1e-3, atol=1e-4)

    def test_attention_chains_bucket_both_seq_dims(self):
        with CompileService(
            A100, workers=1, dynamic="buckets", tuner_kwargs=QUICK
        ) as svc:
            cold = svc.compile(attention_chain(2, 100, 100, 32, 32, name="at-100"))
            warm = svc.compile(attention_chain(2, 90, 90, 32, 32, name="at-90"))
        assert cold.source == "tuned"
        assert warm.source == "bucket"
        assert warm.report.bucket == {"m": 128, "n": 128}

    def test_dynamic_mode_validated(self):
        with pytest.raises(ValueError, match="dynamic"):
            CompileService(A100, dynamic="padding")


class TestCompileModelBuckets:
    def test_private_path_buckets_across_lengths(self):
        """Two compiles of the same FFN at different in-bucket sequence
        lengths share one set of ceiling tunes via the schedule cache."""
        from repro.cache import ScheduleCache
        from repro.frontend.executor import compile_model
        from repro.frontend.models import ffn_block

        cache = ScheduleCache(path=None)
        compile_model(
            ffn_block(seq=100, hidden=64, inner=96), A100,
            dynamic="buckets", cache=cache, tuner_kwargs=QUICK,
        )
        rerun = compile_model(
            ffn_block(seq=120, hidden=64, inner=96), A100,
            dynamic="buckets", cache=cache, tuner_kwargs=QUICK,
        )
        assert rerun.detail["served"].get("bucket", 0) >= 1
        # the recompiled module still computes the right numbers at seq=120
        for module in rerun.module.operator_modules:
            chain = module.schedule.chain
            inputs = chain.random_inputs(0)
            ref = chain.reference(inputs)[chain.output]
            out = module.run(inputs)[chain.output]
            np.testing.assert_allclose(out, ref, rtol=1e-3, atol=1e-4)

    def test_service_mode_mismatch_rejected(self):
        from repro.frontend.executor import compile_model

        with CompileService(A100, workers=1, tuner_kwargs=QUICK) as svc:
            with pytest.raises(ValueError, match="dynamic"):
                compile_model("ffn-narrow", A100, service=svc, dynamic="buckets")

    def test_unknown_dynamic_rejected(self):
        from repro.frontend.executor import compile_model

        with pytest.raises(ValueError, match="dynamic"):
            compile_model("ffn-narrow", A100, dynamic="padded")
