"""Unit tests for repro.gpu.memory — the Fig. 10 'measured' backend."""

import pytest

from repro.gpu.memory import (
    ACCUM_BYTES,
    STATIC_RESERVE_BYTES,
    SharedMemoryReport,
    TileBuffer,
    estimate_shared_memory,
    measure_shared_memory,
)
from repro.gpu.specs import A100, GENERIC


def op(tensor="a", rows=64, cols=64, **kw):
    return TileBuffer(tensor=tensor, rows=rows, cols=cols, **kw)


class TestTileBuffer:
    def test_elements(self):
        assert op(rows=8, cols=4, copies=3).elements == 96

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            op(rows=0)

    def test_rejects_bad_role(self):
        with pytest.raises(ValueError):
            op(role="scratch")

    def test_rejects_bad_copies(self):
        with pytest.raises(ValueError):
            op(copies=0)


class TestEstimate:
    def test_eq1_sum_of_tiles(self):
        bufs = [op("a", 32, 16), op("b", 16, 64)]
        assert estimate_shared_memory(bufs) == (32 * 16 + 16 * 64) * 2

    def test_estimate_ignores_double_buffering(self):
        plain = [op("a", 32, 32)]
        dbuf = [op("a", 32, 32, double_buffered=True)]
        assert estimate_shared_memory(plain) == estimate_shared_memory(dbuf)

    def test_estimate_ignores_copies(self):
        assert estimate_shared_memory([op("a", 32, 32, copies=4)]) == estimate_shared_memory(
            [op("a", 32, 32)]
        )

    def test_estimate_respects_dtype(self):
        assert estimate_shared_memory([op("a", 16, 16, dtype_bytes=4)]) == 16 * 16 * 4


class TestMeasured:
    def test_static_reserve_floor(self):
        report = measure_shared_memory([], A100)
        assert report.total_bytes == STATIC_RESERVE_BYTES

    def test_double_buffering_doubles_operands(self):
        single = measure_shared_memory([op("a", 32, 40)], A100).total_bytes
        double = measure_shared_memory([op("a", 32, 40, double_buffered=True)], A100).total_bytes
        assert double - STATIC_RESERVE_BYTES == 2 * (single - STATIC_RESERVE_BYTES)

    def test_skew_padding_on_pow2_pitch(self):
        # 64 cols * 2B = 128B pitch -> multiple of 128 -> 8-element skew.
        padded = measure_shared_memory([op("a", 16, 64)], A100).total_bytes
        unpadded = measure_shared_memory([op("a", 16, 60)], A100).total_bytes
        assert padded - STATIC_RESERVE_BYTES == 16 * 72 * 2
        assert unpadded - STATIC_RESERVE_BYTES == 16 * 60 * 2

    def test_small_accumulator_in_registers(self):
        report = measure_shared_memory([op("c", 64, 64, role="accumulator")], A100)
        assert report.total_bytes == STATIC_RESERVE_BYTES
        assert report.register_resident == ("c",)

    def test_large_accumulator_spills_fp32(self):
        # 256x256 fp32 = 256KB > half the register file -> shared memory.
        report = measure_shared_memory([op("c", 256, 256, role="accumulator")], A100)
        assert report.register_resident == ()
        assert report.total_bytes > 256 * 256 * ACCUM_BYTES

    def test_copies_multiply(self):
        one = measure_shared_memory([op("s", 32, 40, role="stage")], A100).total_bytes
        four = measure_shared_memory([op("s", 32, 40, role="stage", copies=4)], A100).total_bytes
        assert four - STATIC_RESERVE_BYTES == 4 * (one - STATIC_RESERVE_BYTES)

    def test_fits_check(self):
        small = measure_shared_memory([op("a", 16, 16)], GENERIC)
        assert small.fits(GENERIC)
        huge = measure_shared_memory([op("a", 512, 512)], A100)
        assert not huge.fits(GENERIC)

    def test_register_budget_depends_on_gpu(self):
        buf = op("c", 128, 128, role="accumulator")  # 64KB fp32
        tiny_regs = GENERIC.with_overrides(register_file_per_sm=32 * 1024)
        assert measure_shared_memory([buf], A100).register_resident == ("c",)
        assert measure_shared_memory([buf], tiny_regs).register_resident == ()
