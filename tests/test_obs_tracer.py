"""Tests for the span tracer and flight recorder (`repro.obs.tracer`)."""

from __future__ import annotations

import threading

import pytest

from repro.obs import (
    DEFAULT_MAX_SPANS,
    FlightRecorder,
    Span,
    Tracer,
    current_span,
    disable_tracing,
    enable_tracing,
    get_tracer,
    set_tracer,
    tracing_enabled,
)
from repro.obs.tracer import NOOP_SPAN, load_jsonl


class TestSpanBasics:
    def test_records_name_duration_and_attrs(self):
        tracer = Tracer()
        with tracer.span("work", kind="unit") as span:
            span.set(extra=1)
            span.event("checkpoint", at="half")
        [record] = tracer.recorder.spans()
        assert record.name == "work"
        assert record.attrs == {"kind": "unit", "extra": 1}
        assert record.duration >= 0
        assert record.end >= record.start
        [(event_name, ts, attrs)] = record.events
        assert event_name == "checkpoint"
        assert record.start <= ts <= record.end
        assert attrs == {"at": "half"}

    def test_nesting_inherits_trace_id(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        inner_rec, outer_rec = tracer.recorder.spans()
        assert inner_rec.name == "inner"
        assert outer_rec.parent_id is None
        assert inner_rec.trace_id == outer_rec.trace_id

    def test_sibling_roots_get_distinct_traces(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        a, b = tracer.recorder.spans()
        assert a.trace_id != b.trace_id
        assert a.span_id != b.span_id

    def test_current_tracks_the_stack(self):
        tracer = Tracer()
        assert tracer.current() is None
        with tracer.span("outer") as outer:
            assert tracer.current() is outer
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None

    def test_exception_sets_error_attr_and_finishes(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("kaput")
        [record] = tracer.recorder.spans()
        assert record.attrs["error"] == "ValueError: kaput"

    def test_finish_twice_raises(self):
        tracer = Tracer()
        span = tracer.span("once")
        span.finish()
        with pytest.raises(RuntimeError, match="finished twice"):
            span.finish()

    def test_explicit_parent_overrides_ambient(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("ambient"):
                child = tracer.span("adopted", parent=root)
                assert child.parent_id == root.span_id
                assert child.trace_id == root.trace_id
                child.finish()

    def test_clock_dual_timestamps(self):
        from repro.search.tuning_cost import TuningClock

        tracer = Tracer()
        clock = TuningClock()
        with tracer.span("timed", clock=clock):
            clock.seconds += 2.5
        [record] = tracer.recorder.spans()
        assert record.sim_start == 0.0
        assert record.sim_end == 2.5
        assert record.sim_duration == 2.5

    def test_no_clock_means_no_sim_timestamps(self):
        tracer = Tracer()
        with tracer.span("untimed"):
            pass
        [record] = tracer.recorder.spans()
        assert record.sim_start is None and record.sim_duration is None

    def test_tracer_event_lands_on_current_span(self):
        tracer = Tracer()
        with tracer.span("outer"):
            tracer.event("note", value=3)
        [record] = tracer.recorder.spans()
        assert record.events[0][0] == "note"

    def test_tracer_event_without_span_is_dropped(self):
        tracer = Tracer()
        tracer.event("orphan")  # must not raise
        assert len(tracer.recorder) == 0


class TestDisabledTracer:
    def test_span_returns_noop_singleton(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("anything", attr=1)
        assert span is NOOP_SPAN
        assert tracer.span("more") is span

    def test_noop_span_accepts_full_protocol(self):
        with NOOP_SPAN as span:
            span.set(a=1).event("x", b=2)
        assert NOOP_SPAN.finish() is None
        assert NOOP_SPAN.attrs == {}

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("invisible"):
            tracer.event("also-invisible")
        assert len(tracer.recorder) == 0

    def test_parent_noop_starts_fresh_trace(self):
        # A job queued while tracing was off carries NOOP_SPAN as its
        # trace parent; a later enabled tracer must treat that as "no
        # parent", not crash or inherit the empty ids.
        tracer = Tracer()
        span = tracer.span("fresh", parent=NOOP_SPAN)
        assert span.parent_id is None
        assert span.trace_id
        span.finish()


class TestThreadSafety:
    def test_concurrent_roots_keep_threads_separate(self):
        tracer = Tracer()
        n_threads, spans_each = 8, 25
        barrier = threading.Barrier(n_threads)

        def worker(i):
            barrier.wait()
            for j in range(spans_each):
                with tracer.span(f"t{i}", j=j):
                    with tracer.span(f"t{i}.child"):
                        pass

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        records = tracer.recorder.spans()
        assert len(records) == n_threads * spans_each * 2
        # every child nests under a root of its own thread, and trace ids
        # never leak across threads
        by_id = {r.span_id: r for r in records}
        for r in records:
            if r.parent_id is not None:
                parent = by_id[r.parent_id]
                assert parent.thread_id == r.thread_id
                assert parent.trace_id == r.trace_id
                assert parent.name + ".child" == r.name

    def test_cross_thread_parent_joins_the_trace(self):
        tracer = Tracer()
        with tracer.span("batch") as batch:

            def worker():
                with tracer.span("item", parent=batch):
                    pass

            threads = [threading.Thread(target=worker) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        records = tracer.recorder.spans()
        items = [r for r in records if r.name == "item"]
        batch_rec = next(r for r in records if r.name == "batch")
        assert len(items) == 4
        assert {r.trace_id for r in items} == {batch_rec.trace_id}
        assert {r.parent_id for r in items} == {batch_rec.span_id}

    def test_pool_thread_attr_writes_are_locked(self):
        tracer = Tracer()
        errors = []
        with tracer.span("shared") as span:

            def worker(i):
                try:
                    for j in range(200):
                        span.set(**{f"k{i}": j})
                        span.event(f"e{i}")
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert not errors
        [record] = tracer.recorder.spans()
        assert len(record.events) == 6 * 200
        assert all(record.attrs[f"k{i}"] == 199 for i in range(6))


class TestFlightRecorder:
    def test_bounded_and_counts_drops(self):
        recorder = FlightRecorder(max_spans=4)
        tracer = Tracer()
        tracer.recorder = recorder
        for i in range(7):
            with tracer.span(f"s{i}"):
                pass
        assert len(recorder) == 4
        assert recorder.dropped == 3
        assert [r.name for r in recorder.spans()] == ["s3", "s4", "s5", "s6"]

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            FlightRecorder(max_spans=0)

    def test_traces_group_by_trace_id(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("a.1"):
                pass
        with tracer.span("b"):
            pass
        traces = tracer.recorder.traces()
        assert len(traces) == 2
        sizes = sorted(len(spans) for spans in traces.values())
        assert sizes == [1, 2]

    def test_last_trace_returns_most_recent(self):
        tracer = Tracer()
        with tracer.span("old"):
            pass
        with tracer.span("new-root"):
            with tracer.span("new-child"):
                pass
        last = tracer.recorder.last_trace()
        assert {r.name for r in last} == {"new-root", "new-child"}

    def test_clear_resets_everything(self):
        recorder = FlightRecorder(max_spans=1)
        tracer = Tracer()
        tracer.recorder = recorder
        with tracer.span("x"):
            pass
        with tracer.span("y"):
            pass
        recorder.clear()
        assert len(recorder) == 0 and recorder.dropped == 0

    def test_jsonl_roundtrip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("root", model="gqa") as span:
            span.event("mark", n=1)
        path = tracer.recorder.save_jsonl(tmp_path / "t.jsonl")
        docs = load_jsonl(path)
        assert len(docs) == 1
        assert docs[0]["name"] == "root"
        assert docs[0]["attrs"] == {"model": "gqa"}
        assert docs[0]["events"][0]["name"] == "mark"
        assert docs[0]["duration"] >= 0

    def test_load_jsonl_skips_corruption_and_missing(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"name": "ok"}\nnot json\n[1,2]\n\n{"name": "ok2"}\n')
        docs = load_jsonl(path)
        assert [d["name"] for d in docs] == ["ok", "ok2"]
        assert load_jsonl(tmp_path / "absent.jsonl") == []


class TestGlobalTracer:
    def test_default_is_disabled(self):
        assert not tracing_enabled()
        assert get_tracer().span("x") is NOOP_SPAN

    def test_enable_disable_cycle(self):
        tracer = enable_tracing(max_spans=16)
        assert tracing_enabled()
        assert get_tracer() is tracer
        assert tracer.recorder.max_spans == 16
        with get_tracer().span("visible"):
            assert current_span() is not None
        old = disable_tracing()
        assert old is tracer
        assert not tracing_enabled()
        # the previous recorder still holds the captured spans
        assert [r.name for r in old.recorder.spans()] == ["visible"]

    def test_set_tracer_returns_previous(self):
        mine = Tracer(enabled=True, max_spans=8)
        before = set_tracer(mine)
        try:
            assert get_tracer() is mine
        finally:
            set_tracer(before)

    def test_default_capacity(self):
        assert Tracer().recorder.max_spans == DEFAULT_MAX_SPANS

    def test_span_type(self):
        tracer = Tracer()
        span = tracer.span("typed")
        assert isinstance(span, Span)
        span.finish()
