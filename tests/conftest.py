"""Shared fixtures for the test suite: small chains, GPUs, quick tuners."""

from __future__ import annotations

import pytest

from repro.gpu import A100, GENERIC, RTX3080, GPUSimulator
from repro.ir import attention_chain, gemm_chain
from repro.search import MCFuserTuner


@pytest.fixture(autouse=True)
def _isolated_schedule_cache(tmp_path, monkeypatch):
    """Point the default schedule-cache directory at a per-test temp dir so
    tests (CLI tests in particular) never touch ~/.cache or each other, and
    reset the process-wide compiled-kernel memo, tracer, and obs metrics
    registry between tests."""
    from repro.codegen import clear_kernel_cache
    from repro.obs import disable_tracing, reset_metrics

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "schedule-cache"))
    clear_kernel_cache()
    reset_metrics()
    disable_tracing()
    yield
    disable_tracing()
    reset_metrics()


@pytest.fixture
def a100():
    return A100


@pytest.fixture
def rtx3080():
    return RTX3080


@pytest.fixture
def generic_gpu():
    return GENERIC


@pytest.fixture
def sim(a100):
    return GPUSimulator(a100, seed=0)


@pytest.fixture
def small_gemm():
    """Small GEMM chain (all dims multiples of 16) — fast to interpret."""
    return gemm_chain(2, 96, 80, 64, 48, name="t-gemm")


@pytest.fixture
def small_attention():
    """Small attention chain — fast to interpret."""
    return attention_chain(3, 96, 96, 32, 32, name="t-attn")


@pytest.fixture
def ragged_gemm():
    """GEMM chain with non-multiple-of-16 dims (padding paths)."""
    return gemm_chain(1, 100, 90, 70, 60, name="t-ragged")


@pytest.fixture
def quick_tuner(a100):
    """A tuner with a small budget for integration tests."""
    return MCFuserTuner(a100, population_size=96, top_n=6, max_rounds=4, min_rounds=2, seed=0)
