"""Unit tests for the from-scratch gradient-boosted trees (Ansor's model)."""

import numpy as np
import pytest

from repro.baselines.gbt import GradientBoostedTrees, RegressionTree


def toy_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-2, 2, size=(n, 3))
    y = np.where(x[:, 0] > 0, 3.0, -1.0) + 0.5 * x[:, 1] + 0.05 * rng.standard_normal(n)
    return x, y


class TestRegressionTree:
    def test_fits_step_function(self):
        x, y = toy_data()
        tree = RegressionTree(max_depth=2).fit(x, y)
        pred = tree.predict(x)
        assert np.mean((pred - y) ** 2) < np.var(y) * 0.5

    def test_depth_zero_is_mean(self):
        x, y = toy_data()
        tree = RegressionTree(max_depth=0).fit(x, y)
        np.testing.assert_allclose(tree.predict(x), np.full(len(y), y.mean()))

    def test_constant_target(self):
        x = np.zeros((10, 2))
        y = np.full(10, 7.0)
        tree = RegressionTree().fit(x, y)
        np.testing.assert_allclose(tree.predict(x), y)

    def test_predict_before_fit(self):
        with pytest.raises(AssertionError):
            RegressionTree().predict(np.zeros((1, 2)))


class TestGBT:
    def test_boosting_improves_over_single_tree(self):
        x, y = toy_data(400)
        tree_err = np.mean((RegressionTree(max_depth=3).fit(x, y).predict(x) - y) ** 2)
        gbt = GradientBoostedTrees(n_trees=40).fit(x, y)
        gbt_err = np.mean((gbt.predict(x) - y) ** 2)
        assert gbt_err < tree_err

    def test_generalizes(self):
        x, y = toy_data(400, seed=1)
        xt, yt = toy_data(100, seed=2)
        gbt = GradientBoostedTrees().fit(x, y)
        assert np.mean((gbt.predict(xt) - yt) ** 2) < np.var(yt) * 0.3

    def test_ranking_quality(self):
        """What Ansor actually needs: rank candidates, not regress exactly."""
        x, y = toy_data(300, seed=3)
        gbt = GradientBoostedTrees().fit(x, y)
        pred = gbt.predict(x)
        corr = np.corrcoef(pred, y)[0, 1]
        assert corr > 0.9

    def test_is_fitted_flag(self):
        gbt = GradientBoostedTrees()
        assert not gbt.is_fitted
        x, y = toy_data(50)
        gbt.fit(x, y)
        assert gbt.is_fitted

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            GradientBoostedTrees().fit(np.zeros(10), np.zeros(10))

    def test_deterministic(self):
        x, y = toy_data(100)
        a = GradientBoostedTrees().fit(x, y).predict(x)
        b = GradientBoostedTrees().fit(x, y).predict(x)
        np.testing.assert_array_equal(a, b)
