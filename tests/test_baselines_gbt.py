"""Unit tests for the from-scratch gradient-boosted trees (Ansor's model)."""

import numpy as np
import pytest

from repro.baselines.gbt import GradientBoostedTrees, RegressionTree


def toy_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-2, 2, size=(n, 3))
    y = np.where(x[:, 0] > 0, 3.0, -1.0) + 0.5 * x[:, 1] + 0.05 * rng.standard_normal(n)
    return x, y


class TestRegressionTree:
    def test_fits_step_function(self):
        x, y = toy_data()
        tree = RegressionTree(max_depth=2).fit(x, y)
        pred = tree.predict(x)
        assert np.mean((pred - y) ** 2) < np.var(y) * 0.5

    def test_depth_zero_is_mean(self):
        x, y = toy_data()
        tree = RegressionTree(max_depth=0).fit(x, y)
        np.testing.assert_allclose(tree.predict(x), np.full(len(y), y.mean()))

    def test_constant_target(self):
        x = np.zeros((10, 2))
        y = np.full(10, 7.0)
        tree = RegressionTree().fit(x, y)
        np.testing.assert_allclose(tree.predict(x), y)

    def test_predict_before_fit(self):
        with pytest.raises(AssertionError):
            RegressionTree().predict(np.zeros((1, 2)))


class TestGBT:
    def test_boosting_improves_over_single_tree(self):
        x, y = toy_data(400)
        tree_err = np.mean((RegressionTree(max_depth=3).fit(x, y).predict(x) - y) ** 2)
        gbt = GradientBoostedTrees(n_trees=40).fit(x, y)
        gbt_err = np.mean((gbt.predict(x) - y) ** 2)
        assert gbt_err < tree_err

    def test_generalizes(self):
        x, y = toy_data(400, seed=1)
        xt, yt = toy_data(100, seed=2)
        gbt = GradientBoostedTrees().fit(x, y)
        assert np.mean((gbt.predict(xt) - yt) ** 2) < np.var(yt) * 0.3

    def test_ranking_quality(self):
        """What Ansor actually needs: rank candidates, not regress exactly."""
        x, y = toy_data(300, seed=3)
        gbt = GradientBoostedTrees().fit(x, y)
        pred = gbt.predict(x)
        corr = np.corrcoef(pred, y)[0, 1]
        assert corr > 0.9

    def test_is_fitted_flag(self):
        gbt = GradientBoostedTrees()
        assert not gbt.is_fitted
        x, y = toy_data(50)
        gbt.fit(x, y)
        assert gbt.is_fitted

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            GradientBoostedTrees().fit(np.zeros(10), np.zeros(10))

    def test_deterministic(self):
        x, y = toy_data(100)
        a = GradientBoostedTrees().fit(x, y).predict(x)
        b = GradientBoostedTrees().fit(x, y).predict(x)
        np.testing.assert_array_equal(a, b)


class TestGBTEdgeCases:
    """Degenerate fits must return the prior mean, never crash or grow
    zero-gain trees (the learned cost model refits on tiny, sometimes
    constant-valued datasets every search round)."""

    def test_constant_target_returns_exact_mean(self):
        x = np.random.default_rng(0).normal(size=(20, 3))
        gbt = GradientBoostedTrees().fit(x, np.full(20, 4.5))
        assert gbt.is_fitted
        assert gbt.trees == []  # no degenerate splits attempted
        np.testing.assert_array_equal(gbt.predict(x), np.full(20, 4.5))

    def test_fewer_samples_than_min_returns_prior_mean(self):
        x = np.array([[0.0, 1.0], [2.0, 3.0]])
        y = np.array([1.0, 5.0])
        gbt = GradientBoostedTrees(min_samples=4).fit(x, y)
        assert gbt.is_fitted
        assert gbt.trees == []
        np.testing.assert_array_equal(gbt.predict(x), np.full(2, 3.0))

    def test_single_sample(self):
        gbt = GradientBoostedTrees().fit(np.zeros((1, 2)), np.array([2.0]))
        np.testing.assert_array_equal(gbt.predict(np.ones((3, 2))), np.full(3, 2.0))

    def test_empty_fit_raises(self):
        with pytest.raises(ValueError):
            GradientBoostedTrees().fit(np.zeros((0, 2)), np.zeros(0))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GradientBoostedTrees().predict(np.zeros((1, 2)))

    def test_to_json_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GradientBoostedTrees().to_json()


class TestGBTSerialization:
    def test_roundtrip_preserves_predictions(self):
        x, y = toy_data(150, seed=4)
        gbt = GradientBoostedTrees(n_trees=12).fit(x, y)
        clone = GradientBoostedTrees.from_json(gbt.to_json())
        assert clone.is_fitted
        np.testing.assert_array_equal(clone.predict(x), gbt.predict(x))

    def test_roundtrip_survives_json_encoding(self):
        import json

        x, y = toy_data(80, seed=5)
        gbt = GradientBoostedTrees(n_trees=6).fit(x, y)
        doc = json.loads(json.dumps(gbt.to_json()))
        clone = GradientBoostedTrees.from_json(doc)
        np.testing.assert_array_equal(clone.predict(x), gbt.predict(x))

    def test_prior_mean_only_model_roundtrips(self):
        gbt = GradientBoostedTrees().fit(np.zeros((5, 2)), np.full(5, 1.5))
        clone = GradientBoostedTrees.from_json(gbt.to_json())
        np.testing.assert_array_equal(clone.predict(np.zeros((2, 2))), np.full(2, 1.5))
