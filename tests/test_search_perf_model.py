"""Unit tests for the analytical performance model (eqs. 2-5)."""

import pytest

from repro.gpu.specs import A100
from repro.search.perf_model import AnalyticalModel, ChimeraModel, estimate_time
from repro.tiling.expr import TilingExpr
from repro.tiling.schedule import build_schedule

TILES = {"m": 32, "n": 16, "k": 16, "h": 16}


@pytest.fixture
def schedule(small_gemm):
    return build_schedule(small_gemm, TilingExpr.parse("mhnk"), TILES)


class TestEquations:
    def test_eq3_memory_term(self, schedule):
        est = estimate_time(schedule, A100)
        expected = (
            schedule.dram_read_bytes() + schedule.dram_write_bytes()
        ) / A100.mem_bandwidth
        assert est.t_mem == pytest.approx(expected)

    def test_eq4_compute_term(self, schedule):
        est = estimate_time(schedule, A100)
        assert est.t_comp == pytest.approx(schedule.total_flops() / A100.peak_flops)

    def test_eq5_alpha(self, schedule):
        est = estimate_time(schedule, A100)
        n = schedule.grid_size
        assert est.alpha == pytest.approx((n + A100.num_sms) / n)

    def test_eq2_total(self, schedule):
        est = estimate_time(schedule, A100)
        assert est.total == pytest.approx((est.t_mem + est.t_comp) * est.alpha)

    def test_alpha_approaches_one(self, small_gemm):
        small = build_schedule(small_gemm, TilingExpr.parse("mhnk"), TILES)
        tiny_tiles = {"m": 16, "n": 16, "k": 16, "h": 16}
        big_grid = build_schedule(small_gemm, TilingExpr.parse("mhnk"), tiny_tiles)
        a_small = estimate_time(small, A100).alpha
        a_big = estimate_time(big_grid, A100).alpha
        assert a_big < a_small  # more blocks -> alpha closer to 1
        assert a_big > 1.0


class TestDegenerateGrid:
    def test_fully_collapsed_grid_estimates(self, small_gemm):
        """Full-extent tiles collapse every grid loop to extent 1; the
        estimate must stay finite and well-defined."""
        tiles = {l: s for l, s in small_gemm.loops.items()}
        schedule = build_schedule(small_gemm, TilingExpr.parse("mhnk"), tiles)
        assert all(e == 1 for _, e in schedule.grid_dims if _ != "b")
        est = estimate_time(schedule, A100)
        assert est.total > 0 and est.total < float("inf")

    def test_zero_block_grid_clamped(self, schedule):
        """Regression: a degenerate schedule reporting a zero-block grid
        must not hand eq. (5) a ZeroDivisionError mid-search."""
        schedule.grid_dims = ()  # prod(()) == 1, still fine
        est = estimate_time(schedule, A100)
        assert est.alpha == pytest.approx(1 + A100.num_sms)
        schedule.grid_dims = (("m", 0),)  # the pathological handoff
        est = estimate_time(schedule, A100)
        assert est.alpha == pytest.approx(1 + A100.num_sms)
        assert est.total < float("inf")


class TestModels:
    def test_analytical_positive(self, schedule):
        assert AnalyticalModel(A100)(schedule) > 0

    def test_chimera_ignores_compute(self, schedule):
        full = AnalyticalModel(A100)(schedule)
        movement = ChimeraModel(A100)(schedule)
        est = estimate_time(schedule, A100)
        assert movement == pytest.approx(est.t_mem * est.alpha)
        assert movement < full

    def test_monotone_in_bandwidth(self, schedule):
        slow_gpu = A100.with_overrides(mem_bandwidth=A100.mem_bandwidth / 4)
        assert AnalyticalModel(slow_gpu)(schedule) > AnalyticalModel(A100)(schedule)

    def test_monotone_in_peak_flops(self, schedule):
        slow_gpu = A100.with_overrides(peak_flops=A100.peak_flops / 4)
        assert AnalyticalModel(slow_gpu)(schedule) > AnalyticalModel(A100)(schedule)

    def test_model_ignores_codegen_effects(self, schedule):
        """The model is coarser than the simulator by design (Fig. 11)."""
        from repro.gpu.simulator import GPUSimulator

        model_t = AnalyticalModel(A100)(schedule)
        sim_t = GPUSimulator(A100, jitter=False).run(schedule.kernel_launch(A100))
        assert model_t != pytest.approx(sim_t)
