"""The compiled-kernel cache: two tiers, content-addressed, concurrency-safe.

Covers the contracts the docstring of :mod:`repro.codegen.clang_runtime`
promises: memory-tier hits never touch the filesystem, the disk tier is
shared across runtime instances (and processes), corrupted artifacts are
quarantined and recompiled, concurrent compiles of one source coalesce
into a single compiler invocation, and an unwritable cache directory
degrades to scratch-dir compilation instead of failing.
"""

import threading
import time

import numpy as np
import pytest

from repro.codegen.clang_runtime import (
    ClangRuntime,
    CompileError,
    CompilerNotFoundError,
    compiler_available,
    execute_program_compiled,
)
from repro.codegen.program import lower_schedule
from repro.codegen.render_c import RenderError, render_program
from repro.ir.chain import gemm_chain
from repro.tiling.expr import TilingExpr
from repro.tiling.schedule import build_schedule

needs_cc = pytest.mark.skipif(
    not compiler_available(), reason="no C compiler (clang/cc/gcc) on PATH"
)


def _program(m=64, n=48, k=32, h=32, name="cache-gemm"):
    chain = gemm_chain(1, m, n, k, h, name=name)
    schedule = build_schedule(
        chain, TilingExpr.parse("mhnk"), {"m": 16, "n": 16, "k": 16, "h": 16}
    )
    return chain, lower_schedule(schedule)


@needs_cc
class TestCacheTiers:
    def test_memory_hit_after_compile(self, tmp_path):
        rt = ClangRuntime(cache_dir=str(tmp_path))
        _, program = _program()
        meta = render_program(program)
        first = rt.compile(meta)
        second = rt.compile(meta)
        assert first is second
        stats = rt.stats()
        assert stats.compiles == 1
        assert stats.memory_hits == 1
        assert stats.disk_hits == 0
        assert stats.entries == 1

    def test_disk_artifacts_written(self, tmp_path):
        rt = ClangRuntime(cache_dir=str(tmp_path))
        _, program = _program()
        meta = render_program(program)
        rt.compile(meta)
        assert (tmp_path / f"{meta.source_hash}.so").exists()
        # the source rides along for debuggability
        assert (tmp_path / f"{meta.source_hash}.c").read_text() == meta.source

    def test_disk_reuse_across_instances(self, tmp_path):
        _, program = _program()
        meta = render_program(program)
        ClangRuntime(cache_dir=str(tmp_path)).compile(meta)
        fresh = ClangRuntime(cache_dir=str(tmp_path))
        fresh.compile(meta)
        stats = fresh.stats()
        assert stats.compiles == 0
        assert stats.disk_hits == 1

    def test_clear_memory_cache_falls_to_disk(self, tmp_path):
        rt = ClangRuntime(cache_dir=str(tmp_path))
        _, program = _program()
        meta = render_program(program)
        rt.compile(meta)
        rt.clear_memory_cache()
        assert rt.stats().entries == 0
        rt.compile(meta)
        stats = rt.stats()
        assert stats.compiles == 1
        assert stats.disk_hits == 1

    def test_corrupted_artifact_quarantined_and_recompiled(self, tmp_path):
        _, program = _program()
        meta = render_program(program)
        so = tmp_path / f"{meta.source_hash}.so"
        so.write_bytes(b"this is not an ELF shared object")
        rt = ClangRuntime(cache_dir=str(tmp_path))
        kernel = rt.compile(meta)
        assert kernel.meta.source_hash == meta.source_hash
        stats = rt.stats()
        assert stats.compiles == 1
        assert stats.disk_hits == 0
        assert (tmp_path / f"{meta.source_hash}.so.corrupt").exists()
        # the recompiled artifact is valid for the next instance
        again = ClangRuntime(cache_dir=str(tmp_path))
        again.compile(meta)
        assert again.stats().disk_hits == 1

    def test_unwritable_cache_dir_scratch_fallback(self, tmp_path):
        blocker = tmp_path / "file-not-dir"
        blocker.write_text("occupied")
        rt = ClangRuntime(cache_dir=str(blocker))
        chain, program = _program(name="cache-scratch")
        out = execute_program_compiled(program, chain.random_inputs(0), runtime=rt)
        ref = chain.reference(chain.random_inputs(0))[chain.output]
        np.testing.assert_allclose(out[chain.output], ref, rtol=1e-4, atol=1e-5)
        assert rt.stats().compiles == 1
        assert blocker.read_text() == "occupied"

    def test_distinct_sources_distinct_entries(self, tmp_path):
        rt = ClangRuntime(cache_dir=str(tmp_path))
        _, p1 = _program(name="cache-a")
        _, p2 = _program(m=80, name="cache-b")
        m1, m2 = render_program(p1), render_program(p2)
        assert m1.source_hash != m2.source_hash
        rt.compile(m1)
        rt.compile(m2)
        assert rt.stats().compiles == 2
        assert rt.stats().entries == 2

    def test_render_is_deterministic(self):
        _, program = _program(name="cache-det")
        assert render_program(program).source_hash == render_program(program).source_hash


@needs_cc
class TestCoalescing:
    N_THREADS = 6

    def test_one_compile_many_waiters(self, tmp_path):
        class SlowRuntime(ClangRuntime):
            def _build(self, meta):
                time.sleep(0.3)  # hold the in-flight slot open
                return super()._build(meta)

        rt = SlowRuntime(cache_dir=str(tmp_path))
        _, program = _program(name="cache-race")
        meta = render_program(program)
        barrier = threading.Barrier(self.N_THREADS)
        results, errors = [], []

        def worker():
            barrier.wait()
            try:
                results.append(rt.compile(meta))
            except BaseException as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(self.N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(results) == self.N_THREADS
        assert len({id(k) for k in results}) == 1
        stats = rt.stats()
        assert stats.compiles == 1
        assert stats.waits == self.N_THREADS - 1

    def test_error_propagates_to_waiters(self, tmp_path):
        class FailingRuntime(ClangRuntime):
            def _build(self, meta):
                time.sleep(0.2)
                raise CompileError("synthetic toolchain failure")

        rt = FailingRuntime(cache_dir=str(tmp_path))
        _, program = _program(name="cache-fail")
        meta = render_program(program)
        barrier = threading.Barrier(4)
        errors = []

        def worker():
            barrier.wait()
            try:
                rt.compile(meta)
            except CompileError as exc:
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(errors) == 4
        # a failed compile leaves no poisoned in-flight slot behind
        kernel = ClangRuntime(cache_dir=str(tmp_path)).compile(meta)
        assert kernel.meta.source_hash == meta.source_hash


class TestTypedFailures:
    def test_missing_compiler_raises_typed(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CC", "/nonexistent/mcfuser-cc")
        rt = ClangRuntime(cache_dir=str(tmp_path))
        _, program = _program(name="cache-nocc")
        with pytest.raises(CompilerNotFoundError):
            rt.compile(render_program(program))

    def test_oversized_arena_rejected_at_render(self, monkeypatch):
        """A program whose per-cell arena exceeds the cap must be refused
        with a typed error instead of emitting a kernel that mallocs
        gigabytes per grid cell. (Lowering's 1 GiB gather cap rejects
        naturally huge schedules first, so the cap is lowered to force the
        renderer's own guard.)"""
        import repro.codegen.render_c as render_c

        monkeypatch.setattr(render_c, "MAX_ARENA_BYTES", 1024)
        # The render memo would short-circuit past the patched cap if this
        # program was already rendered; give the check a cold cache.
        monkeypatch.setattr(render_c, "_RENDER_MEMO", {})
        _, program = _program(name="cache-arena")
        with pytest.raises(RenderError, match="arena"):
            render_program(program)
