"""Unit tests for the library (PyTorch/cuBLAS) execution model."""

import pytest

from repro.baselines.library import (
    EAGER_OVERHEAD_PER_OP,
    PyTorchBaseline,
    chain_unfused_kernels,
    elementwise_kernel,
    gemm_kernel,
    normalization_kernel,
    softmax_kernel,
    transpose_kernel,
)
from repro.gpu.simulator import GPUSimulator
from repro.gpu.specs import A100
from repro.ir.chain import attention_chain, gemm_chain


class TestGemmKernel:
    def test_traffic_model(self):
        k = gemm_kernel("g", 1, 512, 512, 128, A100)
        tm, tn = k.tile_m, k.tile_n
        grid_m, grid_n = -(-512 // tm), -(-512 // tn)
        assert k.dram_read_bytes == pytest.approx(
            (grid_n * 512 * 128 + grid_m * 128 * 512) * 2.0
        )
        assert k.dram_write_bytes == pytest.approx(512 * 512 * 2.0)
        assert k.dram_compulsory_read_bytes == pytest.approx(2 * 512 * 128 * 2.0)

    def test_flops(self):
        k = gemm_kernel("g", 2, 128, 64, 32, A100)
        assert k.flops == 2.0 * 2 * 128 * 64 * 32

    def test_dispatch_picks_fast_tile(self):
        sim = GPUSimulator(A100, jitter=False)
        chosen = gemm_kernel("g", 1, 2048, 2048, 512, A100)
        assert chosen.tile_m >= 64  # big GEMMs use big tiles

    def test_tiles_clamped_to_problem(self):
        k = gemm_kernel("g", 1, 32, 32, 16, A100)
        assert k.tile_m <= 32 and k.tile_n <= 32 and k.tile_k <= 16

    def test_strided_batch_derate(self):
        single = gemm_kernel("g", 1, 256, 256, 64, A100)
        batched = gemm_kernel("g", 8, 256, 256, 64, A100)
        assert batched.efficiency < single.efficiency

    def test_short_k_derate(self):
        short = gemm_kernel("g", 1, 512, 512, 32, A100)
        long = gemm_kernel("g", 1, 512, 512, 512, A100)
        assert short.efficiency < long.efficiency
        assert long.efficiency == pytest.approx(1.0)


class TestAuxKernels:
    def test_softmax_two_pass_reads(self):
        k = softmax_kernel("s", 2, 128, 256, A100)
        elements = 2 * 128 * 256
        assert k.dram_read_bytes == pytest.approx(4.0 * elements)
        assert k.dram_write_bytes == pytest.approx(2.0 * elements)

    def test_elementwise_grid_density(self):
        k = elementwise_kernel("e", 1 << 20, A100, num_inputs=2)
        assert k.grid == (1 << 20) // 1024
        assert k.dram_read_bytes == pytest.approx(2.0 * (1 << 20) * 2)

    def test_normalization_extra_pass(self):
        k = normalization_kernel("n", 256, 512, A100)
        assert k.dram_read_bytes > 2.0 * 256 * 512

    def test_transpose_read_write(self):
        k = transpose_kernel("t", 1 << 16, A100)
        assert k.dram_read_bytes == k.dram_write_bytes == pytest.approx(2.0 * (1 << 16))
        assert k.flops == 0.0


class TestChainLowering:
    def test_gemm_chain_two_kernels(self, small_gemm):
        kernels = chain_unfused_kernels(small_gemm, A100)
        assert len(kernels) == 2

    def test_attention_adds_softmax(self, small_attention):
        kernels = chain_unfused_kernels(small_attention, A100)
        assert len(kernels) == 3
        assert any("softmax" in k.name for k in kernels)

    def test_epilogue_adds_elementwise(self):
        chain = gemm_chain(1, 64, 64, 32, 32, epilogue="relu")
        kernels = chain_unfused_kernels(chain, A100)
        assert len(kernels) == 3


class TestPyTorchBaseline:
    def test_result_fields(self, small_gemm):
        r = PyTorchBaseline().run_chain(small_gemm, A100, seed=0)
        assert r.name == "PyTorch"
        assert not r.fused
        assert r.tuning_seconds == 0.0
        assert r.time > 0

    def test_eager_overhead_charged(self, small_attention):
        r = PyTorchBaseline().run_chain(small_attention, A100, seed=0)
        kernels = chain_unfused_kernels(small_attention, A100, seed=0)
        raw = GPUSimulator(A100, seed=0).run_sequence(kernels)
        assert r.time == pytest.approx(raw + EAGER_OVERHEAD_PER_OP * len(kernels))

    def test_deterministic(self, small_gemm):
        a = PyTorchBaseline().run_chain(small_gemm, A100, seed=0)
        b = PyTorchBaseline().run_chain(small_gemm, A100, seed=0)
        assert a.time == b.time
