"""Tests for the end-to-end executor (Fig. 9 machinery)."""

import pytest

from repro.frontend.executor import STRATEGIES, compile_model
from repro.frontend.models import bert_encoder
from repro.gpu.specs import A100

FAST_TUNER = dict(population_size=96, top_n=6, max_rounds=4, min_rounds=2)


@pytest.fixture(scope="module")
def graph():
    return bert_encoder("Bert-Small", 256)


@pytest.fixture(scope="module")
def results(graph):
    return {
        s: compile_model(graph, A100, s, seed=0, tuner_kwargs=FAST_TUNER)
        for s in STRATEGIES
    }


class TestStrategies:
    def test_all_strategies_produce_time(self, results):
        for s, r in results.items():
            assert r.time > 0, s
            assert r.kernel_count > 0, s

    def test_unknown_strategy_rejected(self, graph):
        with pytest.raises(ValueError):
            compile_model(graph, A100, "tvm")

    def test_mcfuser_fuses_subgraphs(self, results):
        assert results["mcfuser+relay"].mbci_subgraphs == 4
        assert results["relay"].mbci_subgraphs == 0

    def test_mcfuser_fewer_kernels(self, results):
        assert results["mcfuser+relay"].kernel_count < results["relay"].kernel_count

    def test_epilogue_fusion_reduces_kernels(self, results):
        assert results["relay"].kernel_count < results["pytorch"].kernel_count


class TestHeadlineOrdering:
    def test_mcfuser_relay_beats_relay(self, results):
        assert results["relay"].time / results["mcfuser+relay"].time > 1.1

    def test_mcfuser_ansor_beats_ansor(self, results):
        assert results["ansor"].time / results["mcfuser+ansor"].time > 1.1

    def test_tuning_time_ordering(self, results):
        assert (
            results["relay"].tuning_seconds
            < results["bolt"].tuning_seconds
            < results["ansor"].tuning_seconds
        )

    def test_mcfuser_relay_tuning_near_relay(self, results):
        """Table IV: MCFuser adds well under Ansor-scale tuning to Relay."""
        extra = results["mcfuser+relay"].tuning_seconds - results["relay"].tuning_seconds
        assert 0 < extra < 300

    def test_mcfuser_ansor_tunes_faster_than_ansor(self, results):
        assert results["mcfuser+ansor"].tuning_seconds < results["ansor"].tuning_seconds


class TestSubgraphCaching:
    def test_identical_layers_tuned_once(self, graph):
        r = compile_model(graph, A100, "mcfuser+relay", seed=0, tuner_kwargs=FAST_TUNER)
        # 4 identical attention layers: tuning cost ~ one MCFuser run, not four.
        single = compile_model(
            bert_encoder("Bert-Small", 256), A100, "relay", seed=0
        ).tuning_seconds
        assert r.tuning_seconds - single < 120
