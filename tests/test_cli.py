"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import (
    FLAG_TABLE,
    FLAGS_BY_PATH,
    build_parser,
    main,
    workload_by_name,
)
from repro.config import SessionConfig, field_paths


class TestWorkloadResolution:
    def test_gemm(self):
        assert workload_by_name("g4").name == "G4"

    def test_attention(self):
        assert workload_by_name("S2").name == "S2"

    def test_unknown(self):
        with pytest.raises(KeyError):
            workload_by_name("X1")


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "G12" in out and "S9" in out and "fig7" in out

    def test_tune(self, capsys):
        assert main(["tune", "G1", "--gpu", "a100"]) == 0
        out = capsys.readouterr().out
        assert "best:" in out and "Compute(tile E)" in out

    def test_tune_with_ptx(self, capsys):
        assert main(["tune", "G1", "--show-ptx"]) == 0
        assert ".entry" in capsys.readouterr().out

    def test_tune_strategy_and_workers(self, capsys):
        assert main(["tune", "G1", "--strategy", "random",
                     "--workers", "2", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "random strategy" in out and "2 worker(s)" in out

    def test_tune_unknown_strategy_rejected(self):
        with pytest.raises(SystemExit):
            main(["tune", "G1", "--strategy", "quantum"])

    def test_tune_exec_backend_and_verify(self, capsys):
        assert main(["tune", "G1", "--exec-backend", "vectorized",
                     "--verify", "best", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "exec:  vectorized backend (verified against reference)" in out

    def test_tune_scalar_backend_unverified(self, capsys):
        assert main(["tune", "G1", "--exec-backend", "scalar", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "exec:  scalar backend (unverified)" in out

    def test_tune_unknown_exec_backend_rejected(self):
        with pytest.raises(SystemExit):
            main(["tune", "G1", "--exec-backend", "cuda"])

    def test_list_shows_strategies(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "evolutionary" in out and "annealing" in out

    def test_cache_warmup_strategy(self, capsys, tmp_path):
        assert main(["cache", "warmup", "G1", "--strategy", "random",
                     "--max-rounds", "2", "--population", "32",
                     "--cache-dir", str(tmp_path)]) == 0
        assert "warmed 1 unique workload" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        assert "mcfuser+random" in capsys.readouterr().out

    def test_compare(self, capsys):
        assert main(["compare", "S4", "--ansor-trials", "64"]) == 0
        out = capsys.readouterr().out
        assert "MCFuser" in out and "FlashAttention" in out

    def test_compare_3080_hides_bolt(self, capsys):
        assert main(["compare", "G1", "--gpu", "rtx3080", "--ansor-trials", "64"]) == 0
        out = capsys.readouterr().out
        bolt_row = [l for l in out.splitlines() if l.startswith("BOLT")][0]
        assert "-" in bolt_row

    def test_experiments_single(self, capsys):
        assert main(["experiments", "table1"]) == 0
        assert "MCFuser (ours)" in capsys.readouterr().out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestFlagTableParity:
    """The declarative flag table must stay in lockstep with the config
    schema: every SessionConfig leaf has exactly one flag and vice versa."""

    def test_table_covers_schema_exactly(self):
        assert {spec.path for spec in FLAG_TABLE} == set(field_paths())

    def test_one_row_per_path(self):
        assert len(FLAG_TABLE) == len(FLAGS_BY_PATH) == len(field_paths())

    def test_flags_unique(self):
        flags = [spec.flag for spec in FLAG_TABLE]
        assert len(flags) == len(set(flags))

    def test_rows_are_well_formed(self):
        for spec in FLAG_TABLE:
            assert spec.flag.startswith("--"), spec
            assert spec.kind in ("value", "true", "false"), spec
            assert spec.help, spec

    def test_presence_flags_are_booleans(self):
        defaults = SessionConfig()
        for spec in FLAG_TABLE:
            if spec.kind in ("true", "false"):
                assert isinstance(defaults.get(spec.path), bool), spec

    def test_config_show_lists_every_field(self, capsys):
        assert main(["config", "show"]) == 0
        out = capsys.readouterr().out
        for path in field_paths():
            assert path in out
        assert "variant key" in out

    def test_config_dump_round_trips(self, capsys, tmp_path):
        path = tmp_path / "cfg.json"
        assert main(["config", "dump", "--seed", "7", "--strategy", "random",
                     "--out", str(path)]) == 0
        cfg = SessionConfig.load(str(path))
        assert cfg.search.seed == 7
        assert cfg.search.strategy == "random"


class TestConfigFile:
    def _tune_args(self):
        return ["tune", "G1", "--seed", "3", "--strategy", "random",
                "--max-rounds", "2", "--no-cache"]

    def test_config_file_tune_bit_identical(self, capsys, tmp_path, monkeypatch):
        for var in ("REPRO_SEARCH_SEED", "REPRO_SEARCH_STRATEGY",
                    "REPRO_SEARCH_MAX_ROUNDS", "REPRO_CACHE_ENABLED"):
            monkeypatch.delenv(var, raising=False)
        assert main(self._tune_args()) == 0
        via_flags = capsys.readouterr().out

        path = tmp_path / "cfg.json"
        assert main(["config", "dump", "--seed", "3", "--strategy", "random",
                     "--max-rounds", "2", "--no-cache",
                     "--out", str(path)]) == 0
        capsys.readouterr()
        assert main(["tune", "G1", "--config", str(path)]) == 0
        via_file = capsys.readouterr().out
        assert via_file == via_flags

    def test_flags_override_config_file(self, capsys, tmp_path):
        path = tmp_path / "cfg.json"
        SessionConfig.make(strategy="random", max_rounds=2, min_rounds=1,
                           cache_enabled=False).save(str(path))
        assert main(["tune", "G1", "--config", str(path),
                     "--strategy", "annealing"]) == 0
        out = capsys.readouterr().out
        assert "annealing strategy" in out

    def test_env_overrides_config_file(self, capsys, tmp_path, monkeypatch):
        path = tmp_path / "cfg.json"
        SessionConfig.make(seed=3).save(str(path))
        monkeypatch.setenv("REPRO_SEARCH_SEED", "9")
        assert main(["config", "dump", "--config", str(path)]) == 0
        dumped = json.loads(capsys.readouterr().out)
        assert dumped["search"]["seed"] == 9

    def test_missing_config_file_fails(self, tmp_path, capsys):
        with pytest.raises((SystemExit, OSError)):
            main(["tune", "G1", "--config", str(tmp_path / "nope.json")])


class TestTraceCommand:
    def test_trace_chain_workload(self, capsys, tmp_path):
        out_path = tmp_path / "trace.json"
        assert main(["trace", "G1", "--out", str(out_path),
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "root-span coverage" in out
        assert "chrome trace written" in out
        import json

        from repro.obs import validate_chrome_trace

        doc = json.loads(out_path.read_text(encoding="utf-8"))
        validate_chrome_trace(doc)
        names = {e["name"] for e in doc["traceEvents"]}
        assert "tune" in names and "search.round" in names
        assert (tmp_path / "cache" / "traces.jsonl").exists()

    def test_trace_leaves_tracing_disabled(self, tmp_path):
        from repro.obs import tracing_enabled

        assert main(["trace", "G1", "--out", str(tmp_path / "t.json"),
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        assert not tracing_enabled()

    def test_metrics_prom_after_serve(self, capsys, tmp_path):
        assert main(["serve", "--quick", "--clients", "2", "--requests", "2",
                     "--signatures", "2", "--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["metrics", "--prom", "--cache-dir", str(tmp_path)]) == 0
        text = capsys.readouterr().out
        assert "# TYPE repro_serve_requests_total counter" in text
        assert "repro_serve_requests_total 4" in text

    def test_serve_trace_writes_artifacts(self, capsys, tmp_path):
        assert main(["serve", "--quick", "--trace", "--clients", "2",
                     "--requests", "2", "--signatures", "2",
                     "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "chrome trace at" in out
        import json

        from repro.obs import validate_chrome_trace

        doc = json.loads((tmp_path / "serve_trace.json").read_text(encoding="utf-8"))
        validate_chrome_trace(doc)
        assert any(e["name"] == "serve.request" for e in doc["traceEvents"])
