"""Property-based invariants of schedule expansion and pruning.

These encode the paper's implicit claims as machine-checked properties:
Rule-1 equivalence classes really are equivalent, traffic never beats the
compulsory minimum, stores write each output element exactly once, and
the DAG optimization never increases any cost."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.specs import A100
from repro.ir.chain import gemm_chain
from repro.search.space import generate_space
from repro.tiling.enumeration import all_tilings, sub_tiling_expr
from repro.tiling.schedule import build_schedule
from repro.utils import ceil_div

tile_pick = st.sampled_from([16, 32, 64])
dim_pick = st.integers(2, 6).map(lambda x: x * 16)


@st.composite
def chain_and_tiles(draw):
    m, n, k, h = (draw(dim_pick) for _ in range(4))
    chain = gemm_chain(1, m, n, k, h, name=f"prop{m}_{n}_{k}_{h}")
    tiles = {l: min(draw(tile_pick), s) for l, s in chain.loops.items()}
    return chain, tiles


@settings(max_examples=30, deadline=None)
@given(data=chain_and_tiles())
def test_rule1_classes_share_all_cost_quantities(data):
    """Candidates with the same per-block sub-expression are *equivalent*:
    identical grid, FLOPs, traffic and shared memory (Rule 1's premise)."""
    chain, tiles = data
    by_class: dict[str, tuple] = {}
    for expr in all_tilings(chain):
        sched = build_schedule(chain, expr, tiles)
        key = sub_tiling_expr(chain, expr).render()
        quantities = (
            sched.grid_size,
            sched.total_flops(),
            sched.dram_read_bytes(),
            sched.dram_write_bytes(),
            sched.shm_estimate(),
        )
        if key in by_class:
            assert by_class[key] == quantities, (expr.render(), key)
        else:
            by_class[key] = quantities


@settings(max_examples=30, deadline=None)
@given(data=chain_and_tiles())
def test_store_traffic_is_exactly_padded_output(data):
    chain, tiles = data
    sched = build_schedule(chain, all_tilings(chain)[0], tiles)
    padded_m = ceil_div(chain.loops["m"], tiles["m"]) * tiles["m"]
    padded_h = ceil_div(chain.loops["h"], tiles["h"]) * tiles["h"]
    expected = chain.batch * padded_m * padded_h * chain.dtype_bytes
    assert sched.dram_write_bytes() == pytest.approx(expected)


@settings(max_examples=30, deadline=None)
@given(data=chain_and_tiles())
def test_read_traffic_at_least_compulsory(data):
    """A fused kernel can never read less than each input once."""
    chain, tiles = data
    sched = build_schedule(chain, all_tilings(chain)[0], tiles)
    compulsory = sum(
        chain.batch * chain.loops[d0] * chain.loops[d1] * chain.dtype_bytes
        for d0, d1 in (("m", "k"), ("k", "n"), ("n", "h"))
    )
    assert sched.dram_read_bytes() >= compulsory * 0.999


@settings(max_examples=30, deadline=None)
@given(data=chain_and_tiles())
def test_flops_at_least_useful_work(data):
    chain, tiles = data
    sched = build_schedule(chain, all_tilings(chain)[0], tiles)
    assert sched.total_flops() >= chain.total_flops() * 0.999


@settings(max_examples=25, deadline=None)
@given(data=chain_and_tiles())
def test_dag_optimization_never_increases_costs(data):
    chain, tiles = data
    for expr in all_tilings(chain)[:6]:
        base = build_schedule(chain, expr, tiles, optimize=False)
        opt = build_schedule(chain, expr, tiles, optimize=True)
        assert opt.dram_read_bytes() <= base.dram_read_bytes() * (1 + 1e-9)
        assert opt.dram_write_bytes() <= base.dram_write_bytes() * (1 + 1e-9)
        assert opt.total_flops() <= base.total_flops() * (1 + 1e-9)
        assert opt.grid_size == base.grid_size


@settings(max_examples=10, deadline=None)
@given(m=dim_pick, n=dim_pick, k=dim_pick, h=dim_pick)
def test_generated_space_candidates_all_executable(m, n, k, h):
    """Everything the pruned space admits must pass validity + Rule 2."""
    chain = gemm_chain(1, m, n, k, h, name=f"sp{m}_{n}_{k}_{h}")
    space = generate_space(chain, A100, max_candidates=30)
    for cand in space.candidates:
        sched = space.schedule_for(cand)
        sched.check_valid()
        assert all(
            sched.live_copies(t) == 1
            for t, ref in chain.tensors.items()
            if ref.role != "input"
        )
