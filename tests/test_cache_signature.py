"""Workload-signature hashing: stability, sensitivity, and independence."""

from repro.cache.signature import (
    chain_fingerprint,
    gpu_fingerprint,
    schedule_signature,
    workload_signature,
)
from repro.gpu.specs import A100, RTX3080
from repro.ir.chain import attention_chain, gemm_chain
from repro.tiling.expr import TilingExpr
from repro.tiling.schedule import build_schedule


class TestStability:
    def test_same_structure_same_signature(self):
        a = gemm_chain(2, 256, 128, 64, 64, name="first")
        b = gemm_chain(2, 256, 128, 64, 64, name="second")
        assert workload_signature(a, A100) == workload_signature(b, A100)

    def test_name_is_not_part_of_the_key(self):
        """Identically shaped workloads must share cache entries."""
        a = attention_chain(8, 256, 256, 64, 64, name="layer0")
        b = attention_chain(8, 256, 256, 64, 64, name="layer11")
        assert workload_signature(a, A100) == workload_signature(b, A100)

    def test_repeated_hashing_is_deterministic(self):
        chain = gemm_chain(1, 512, 256, 64, 128)
        sigs = {workload_signature(chain, A100) for _ in range(5)}
        assert len(sigs) == 1

    def test_format(self):
        sig = workload_signature(gemm_chain(1, 128, 128, 64, 64), A100)
        assert len(sig) == 32
        assert all(c in "0123456789abcdef" for c in sig)


class TestSensitivity:
    def test_shape_changes_signature(self):
        a = gemm_chain(1, 256, 256, 64, 64)
        b = gemm_chain(1, 256, 256, 64, 128)
        assert workload_signature(a, A100) != workload_signature(b, A100)

    def test_batch_changes_signature(self):
        a = gemm_chain(1, 256, 256, 64, 64)
        b = gemm_chain(4, 256, 256, 64, 64)
        assert workload_signature(a, A100) != workload_signature(b, A100)

    def test_dtype_changes_signature(self):
        a = gemm_chain(1, 256, 256, 64, 64, dtype="float16")
        b = gemm_chain(1, 256, 256, 64, 64, dtype="float32")
        assert workload_signature(a, A100) != workload_signature(b, A100)

    def test_structure_changes_signature(self):
        """Attention vs GEMM chain with identical loop extents differ."""
        a = gemm_chain(8, 256, 256, 64, 64)
        b = attention_chain(8, 256, 256, 64, 64)
        assert workload_signature(a, A100) != workload_signature(b, A100)

    def test_epilogue_changes_signature(self):
        a = gemm_chain(1, 256, 256, 64, 64)
        b = gemm_chain(1, 256, 256, 64, 64, epilogue="relu")
        assert workload_signature(a, A100) != workload_signature(b, A100)

    def test_gpu_changes_signature(self):
        chain = gemm_chain(1, 256, 256, 64, 64)
        assert workload_signature(chain, A100) != workload_signature(chain, RTX3080)

    def test_gpu_field_override_changes_signature(self):
        chain = gemm_chain(1, 256, 256, 64, 64)
        shrunk = A100.with_overrides(shared_mem_per_block=96 * 1024)
        assert workload_signature(chain, A100) != workload_signature(chain, shrunk)

    def test_variant_changes_signature(self):
        chain = gemm_chain(1, 256, 256, 64, 64)
        assert workload_signature(chain, A100, "mcfuser") != workload_signature(
            chain, A100, "chimera"
        )


class TestFingerprints:
    def test_chain_fingerprint_is_json_friendly(self):
        import json

        fp = chain_fingerprint(attention_chain(4, 128, 128, 32, 32))
        assert json.loads(json.dumps(fp)) == json.loads(json.dumps(fp))
        assert "name" not in fp

    def test_gpu_fingerprint_covers_all_spec_fields(self):
        import dataclasses

        fp = gpu_fingerprint(A100)
        for f in dataclasses.fields(A100):
            assert f.name in fp, f.name


class TestScheduleSignature:
    def test_tiles_and_expr_distinguish(self):
        chain = gemm_chain(1, 256, 256, 64, 64)
        expr = TilingExpr.parse("mhnk")
        s1 = build_schedule(chain, expr, {"m": 64, "n": 64, "k": 64, "h": 64})
        s2 = build_schedule(chain, expr, {"m": 32, "n": 64, "k": 64, "h": 64})
        s3 = build_schedule(chain, TilingExpr.parse("mnhk"), {"m": 64, "n": 64, "k": 64, "h": 64})
        sigs = {schedule_signature(s, A100) for s in (s1, s2, s3)}
        assert len(sigs) == 3

    def test_optimize_flag_distinguishes(self):
        chain = gemm_chain(1, 256, 256, 64, 64)
        expr = TilingExpr.parse("mhnk")
        tiles = {"m": 64, "n": 64, "k": 64, "h": 64}
        a = build_schedule(chain, expr, tiles, optimize=True)
        b = build_schedule(chain, expr, tiles, optimize=False)
        assert schedule_signature(a, A100) != schedule_signature(b, A100)
