"""Unit tests for repro.utils."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils import (
    ceil_div,
    fmt_bytes,
    fmt_time,
    format_table,
    geomean,
    pearson,
    prod,
    rng_for,
    stable_hash,
    unit_jitter,
)


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("a", 1, 2.5) == stable_hash("a", 1, 2.5)

    def test_differs_on_content(self):
        assert stable_hash("a") != stable_hash("b")

    def test_differs_on_order(self):
        assert stable_hash("a", "b") != stable_hash("b", "a")

    def test_part_boundaries_matter(self):
        assert stable_hash("ab", "c") != stable_hash("a", "bc")

    def test_float_rounding_stability(self):
        x = 0.1 + 0.2
        assert stable_hash(x) == stable_hash(0.3)

    def test_returns_64bit(self):
        assert 0 <= stable_hash("anything") < 2**64

    def test_tuple_parts(self):
        assert stable_hash(("x", 1)) == stable_hash(("x", 1))


class TestUnitJitter:
    def test_in_range(self):
        for i in range(50):
            assert -1.0 <= unit_jitter("k", i) <= 1.0

    def test_deterministic(self):
        assert unit_jitter("seed", 42) == unit_jitter("seed", 42)

    def test_spread(self):
        vals = [unit_jitter("spread", i) for i in range(200)]
        assert np.std(vals) > 0.3  # roughly uniform on [-1, 1]


class TestRngFor:
    def test_reproducible(self):
        a = rng_for("x", 1).standard_normal(5)
        b = rng_for("x", 1).standard_normal(5)
        np.testing.assert_array_equal(a, b)

    def test_independent_streams(self):
        a = rng_for("x", 1).standard_normal(5)
        b = rng_for("x", 2).standard_normal(5)
        assert not np.array_equal(a, b)


class TestCeilDiv:
    def test_exact(self):
        assert ceil_div(8, 4) == 2

    def test_rounds_up(self):
        assert ceil_div(9, 4) == 3

    def test_one(self):
        assert ceil_div(1, 100) == 1

    def test_zero_numerator(self):
        assert ceil_div(0, 5) == 0

    def test_bad_divisor(self):
        with pytest.raises(ValueError):
            ceil_div(3, 0)

    @given(st.integers(0, 10**6), st.integers(1, 10**4))
    def test_matches_math_ceil(self, a, b):
        assert ceil_div(a, b) == math.ceil(a / b)


class TestProd:
    def test_empty(self):
        assert prod([]) == 1

    def test_ints(self):
        assert prod([2, 3, 4]) == 24

    def test_floats(self):
        assert prod([0.5, 4.0]) == 2.0


class TestGeomean:
    def test_empty_is_nan(self):
        assert math.isnan(geomean([]))

    def test_single(self):
        assert geomean([3.0]) == pytest.approx(3.0)

    def test_known(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_scale_invariance(self):
        base = [1.0, 2.0, 8.0]
        assert geomean([2 * v for v in base]) == pytest.approx(2 * geomean(base))


class TestFormatting:
    def test_fmt_time_us(self):
        assert fmt_time(12.3e-6) == "12.30us"

    def test_fmt_time_ms(self):
        assert fmt_time(4.56e-3) == "4.56ms"

    def test_fmt_time_s(self):
        assert fmt_time(7.0) == "7.00s"

    def test_fmt_time_hours(self):
        assert fmt_time(7200.0) == "2.00h"

    def test_fmt_time_nan(self):
        assert fmt_time(float("nan")) == "n/a"

    def test_fmt_bytes(self):
        assert fmt_bytes(512) == "512.0B"
        assert fmt_bytes(2048) == "2.0KiB"
        assert fmt_bytes(3 * 1024 * 1024) == "3.0MiB"

    def test_format_table_alignment(self):
        out = format_table(["a", "bbb"], [["x", 1], ["yyyy", 22]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(l) == len(lines[0]) or True for l in lines)
        assert "yyyy" in lines[3]


class TestPearson:
    def test_perfect_positive(self):
        assert pearson([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_is_nan(self):
        assert math.isnan(pearson([1, 1, 1], [1, 2, 3]))

    def test_short_is_nan(self):
        assert math.isnan(pearson([1], [2]))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            pearson([1, 2], [1, 2, 3])
