"""Unit tests for repro.gpu.kernel."""

import pytest

from repro.gpu.kernel import CODEGEN_QUALITY, KernelLaunch


def make(**kw):
    base = dict(
        name="k",
        grid=16,
        flops=1e9,
        dram_read_bytes=1e6,
        dram_write_bytes=1e5,
        shared_mem_bytes=4096,
    )
    base.update(kw)
    return KernelLaunch(**base)


class TestValidation:
    def test_ok(self):
        assert make().grid == 16

    def test_rejects_zero_grid(self):
        with pytest.raises(ValueError):
            make(grid=0)

    def test_rejects_negative_flops(self):
        with pytest.raises(ValueError):
            make(flops=-1)

    def test_rejects_negative_bytes(self):
        with pytest.raises(ValueError):
            make(dram_read_bytes=-1)

    def test_rejects_unknown_codegen(self):
        with pytest.raises(ValueError):
            make(codegen="llvm")

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ValueError):
            make(efficiency=0.0)
        with pytest.raises(ValueError):
            make(efficiency=1.5)


class TestDerived:
    def test_dram_bytes(self):
        assert make().dram_bytes == pytest.approx(1.1e6)

    def test_arithmetic_intensity(self):
        assert make().arithmetic_intensity == pytest.approx(1e9 / 1.1e6)

    def test_intensity_zero_traffic(self):
        k = make(dram_read_bytes=0, dram_write_bytes=0)
        assert k.arithmetic_intensity == float("inf")

    def test_signature_stable(self):
        assert make().signature() == make().signature()

    def test_signature_sensitive(self):
        assert make().signature() != make(grid=17).signature()
        assert make().signature() != make(efficiency=0.5).signature()
        assert make().signature() != make(dram_compulsory_read_bytes=1.0).signature()

    def test_extra_not_in_signature(self):
        assert make(extra={"a": 1}).signature() == make(extra={"b": 2}).signature()


class TestQualityTable:
    def test_ordering(self):
        q = CODEGEN_QUALITY
        assert q["cublas"] > q["cutlass"] > q["triton"] > q["ansor_op"] > q["relay"] > q["ansor"]

    def test_all_in_unit_interval(self):
        assert all(0 < v <= 1 for v in CODEGEN_QUALITY.values())
