"""Differential parity: general partitioner vs the legacy pattern oracle.

On every graph composed of the paper's two patterns — the real encoder
models and a seeded random pattern generator — the general-DAG partitioner
must produce exactly the fusion groups the legacy matchers produced: same
absorbed node sets, same group order, same residual set. End-to-end, the
chains it emits must match the graph-interpreter baseline within the
existing tolerances.
"""

import numpy as np
import pytest

from dag_gen import pattern_graph
from repro.frontend.models import bert_encoder, vit_encoder
from repro.frontend.partition import legacy_partition_graph, partition_graph
from repro.gpu.specs import A100, RTX3080
from repro.ir.graph import Graph
from repro.ir.ops import BatchMatmul


def assert_same_groups(graph, gpu=A100):
    new = partition_graph(graph, gpu)
    old = legacy_partition_graph(graph, gpu)
    assert [set(sg.nodes) for sg in new.subgraphs] == [
        set(sg.nodes) for sg in old.subgraphs
    ], f"{graph.name}: absorbed node sets diverge"
    assert [sg.kind for sg in new.subgraphs] == [sg.kind for sg in old.subgraphs]
    assert [sg.output for sg in new.subgraphs] == [sg.output for sg in old.subgraphs]
    assert {n.output for n in new.rest} == {n.output for n in old.rest}
    return new, old


class TestModelParity:
    @pytest.mark.parametrize("model,seq", [("Bert-Small", 128), ("Bert-Base", 64)])
    def test_bert(self, model, seq):
        new, old = assert_same_groups(bert_encoder(model, seq))
        assert len(new.subgraphs) > 0

    def test_vit(self):
        assert_same_groups(vit_encoder("ViT-Base", tokens=64))

    def test_both_gpus(self):
        graph = bert_encoder("Bert-Small", 128)
        for gpu in (A100, RTX3080):
            assert_same_groups(graph, gpu)

    def test_signatures_match_legacy(self):
        """Canonical attention groups keep the legacy workload signature,
        so schedule caches warmed before this change keep hitting."""
        graph = bert_encoder("Bert-Small", 512)
        new, old = assert_same_groups(graph)
        for sg_new, sg_old in zip(new.subgraphs, old.subgraphs):
            assert sg_new.signature(A100) == sg_old.signature(A100)
            assert sg_new.inputs == sg_old.inputs


class TestSuffixRecovery:
    def test_rejected_overgrowth_still_fuses_legal_suffix(self):
        """A greedy over-grown group that fails the MBCI gate must not
        forfeit the legal suffix group the legacy oracle fuses."""
        g = Graph("suffix")
        g.add_input("a", (1, 4096, 4096))
        g.add_input("b", (1, 4096, 4096))
        g.add_input("d", (1, 4096, 64))
        g.add_input("f", (1, 64, 64))
        g.add(BatchMatmul(("a", "b"), "c"))  # huge: any group with c is compute-bound
        g.add(BatchMatmul(("c", "d"), "e"))
        g.add(BatchMatmul(("e", "f"), "h"))
        g.mark_output("h")
        new, old = assert_same_groups(g)
        assert [set(sg.nodes) for sg in new.subgraphs] == [{"e", "h"}]
        # one diagnostic for the over-grown attempt, no duplicates for members
        assert new.rejection_reasons() == {"compute-bound": 1}


class TestRandomPatternParity:
    @pytest.mark.parametrize("seed", range(60))
    def test_groups_identical(self, seed):
        assert_same_groups(pattern_graph(seed))

    @pytest.mark.parametrize("seed", range(10))
    def test_chain_outputs_match_interpreter_baseline(self, seed):
        """The general partitioner's chains reproduce the unfused graph
        execution on every absorbed sub-graph (existing tolerances)."""
        graph = pattern_graph(seed)
        if any(s > 1024 for shape in graph.shapes.values() for s in shape):
            pytest.skip("compute-bound-scale pattern; numerics too heavy")
        partition = partition_graph(graph, A100)
        env = graph.execute(graph.random_feed(seed=0, scale=0.05))
        for sg in partition.subgraphs:
            got = sg.chain.reference(sg.bind_inputs(env))[sg.chain.output]
            np.testing.assert_allclose(
                sg.extract_output(got, graph), env[sg.output], rtol=1e-4, atol=1e-5
            )
