"""Unit tests for tiling-expression enumeration and grid binding."""

import pytest

from repro.ir.chain import ComputeBlock, ComputeChain, TensorRef, attention_chain, gemm_chain
from repro.tiling.enumeration import (
    all_tilings,
    bindable_spatial_loops,
    deep_tilings,
    flat_tilings,
    sub_tiling_expr,
)
from repro.tiling.expr import TilingExpr


def matmul_chain(m=64, n=64, k=32):
    """A single-GEMM chain (used by the Fig. 2 roofline too)."""
    return ComputeChain(
        "matmul",
        {"m": m, "n": n, "k": k},
        (ComputeBlock("C", ("A", "B"), "C", ("m", "n"), ("k",)),),
        {
            "A": TensorRef("A", ("m", "k"), "input"),
            "B": TensorRef("B", ("k", "n"), "input"),
            "C": TensorRef("C", ("m", "n"), "output"),
        },
    )


def triple_gemm_chain():
    """C = A@B; E = C@D; G = E@F — a 5-loop, 3-block chain."""
    return ComputeChain(
        "triple",
        {"m": 64, "n": 48, "k": 32, "h": 48, "g": 32},
        (
            ComputeBlock("C", ("A", "B"), "C", ("m", "n"), ("k",)),
            ComputeBlock("E", ("C", "D"), "E", ("m", "h"), ("n",)),
            ComputeBlock("G", ("E", "F"), "G", ("m", "g"), ("h",)),
        ),
        {
            "A": TensorRef("A", ("m", "k"), "input"),
            "B": TensorRef("B", ("k", "n"), "input"),
            "C": TensorRef("C", ("m", "n"), "intermediate"),
            "D": TensorRef("D", ("n", "h"), "input"),
            "E": TensorRef("E", ("m", "h"), "intermediate"),
            "F": TensorRef("F", ("h", "g"), "input"),
            "G": TensorRef("G", ("m", "g"), "output"),
        },
    )


class TestCounts:
    def test_gemm_chain_deep_count(self, small_gemm):
        assert len(deep_tilings(small_gemm)) == 24  # 4!

    def test_gemm_chain_flat_count(self, small_gemm):
        flats = flat_tilings(small_gemm)
        assert {e.render() for e in flats} == {"mn(k,h)", "nm(k,h)"}

    def test_gemm_chain_total_is_26(self, small_gemm):
        assert len(all_tilings(small_gemm)) == 26  # the paper's count

    def test_attention_same_loop_skeleton(self, small_attention):
        assert len(all_tilings(small_attention)) == 26

    def test_single_matmul_no_flat(self):
        chain = matmul_chain()
        assert len(deep_tilings(chain)) == 6
        assert flat_tilings(chain) == []

    def test_triple_gemm_counts(self):
        chain = triple_gemm_chain()
        assert len(deep_tilings(chain)) == 120  # 5!
        flats = flat_tilings(chain)
        # shared loops {m, n, h} -> 3! outer perms x single-loop groups (k, g)
        assert len(flats) == 6
        assert "mnh(k,g)" in {e.render() for e in flats}


class TestGridBinding:
    def test_deep_binds_all_output_spatial(self, small_gemm):
        e = TilingExpr.parse("mhnk")
        assert bindable_spatial_loops(small_gemm, e) == ("m", "h")

    def test_deep_binds_even_inner_spatial(self, small_gemm):
        # paper: mnkh and mhnk are equivalent -> h bindable although inner.
        e = TilingExpr.parse("mnkh")
        assert bindable_spatial_loops(small_gemm, e) == ("m", "h")

    def test_flat_does_not_bind_group_member(self, small_gemm):
        e = TilingExpr.parse("mn(k,h)")
        assert bindable_spatial_loops(small_gemm, e) == ("m",)

    def test_flat_binds_through_single_child_chain(self, small_gemm):
        e = TilingExpr.parse("nm(k,h)")
        assert bindable_spatial_loops(small_gemm, e) == ("m",)

    def test_non_spatial_never_bound(self, small_gemm):
        for expr in all_tilings(small_gemm):
            bound = bindable_spatial_loops(small_gemm, expr)
            assert set(bound) <= {"m", "h"}


class TestSubExpressions:
    def test_paper_example_mnkh_equals_mhnk(self, small_gemm):
        a = sub_tiling_expr(small_gemm, TilingExpr.parse("mhnk")).render()
        b = sub_tiling_expr(small_gemm, TilingExpr.parse("mnkh")).render()
        assert a == b == "nk"

    def test_gemm_chain_classes(self, small_gemm):
        classes = {sub_tiling_expr(small_gemm, e).render() for e in all_tilings(small_gemm)}
        assert classes == {"nk", "kn", "n(k,h)"}

    def test_single_matmul_single_class(self):
        chain = matmul_chain()
        classes = {sub_tiling_expr(chain, e).render() for e in deep_tilings(chain)}
        assert classes == {"k"}

    def test_triple_gemm_deep_classes(self):
        chain = triple_gemm_chain()
        classes = {sub_tiling_expr(chain, e).render() for e in deep_tilings(chain)}
        # residual loops {n, k, h}: all 3! permutations appear
        assert len(classes) == 6
