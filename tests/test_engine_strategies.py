"""Strategy registry, parity across strategies, and the SearchLoop driver."""

import numpy as np
import pytest

from repro.gpu.specs import A100
from repro.ir.chain import attention_chain, gemm_chain
from repro.search.engine import (
    EvolutionarySearch,
    ParallelEvaluator,
    SearchLoop,
    SearchStrategy,
    make_strategy,
    strategy_names,
)
from repro.search.engine.strategy import STRATEGY_REGISTRY, register_strategy
from repro.search.tuner import MCFuserTuner

ALL_STRATEGIES = ("evolutionary", "random", "exhaustive", "annealing")


class TestRegistry:
    def test_builtins_registered(self):
        assert set(ALL_STRATEGIES) <= set(strategy_names())

    def test_make_strategy_by_name(self):
        assert make_strategy("evolutionary").name == "evolutionary"

    def test_make_strategy_passthrough(self):
        inst = EvolutionarySearch()
        assert make_strategy(inst) is inst

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_strategy("quantum")
        with pytest.raises(ValueError):
            MCFuserTuner(A100, strategy="quantum")

    def test_register_requires_name(self):
        class Nameless(SearchStrategy):
            pass

        with pytest.raises(ValueError):
            register_strategy(Nameless)

    def test_register_rejects_name_collision(self):
        class Imposter(SearchStrategy):
            name = "random"  # collides with the built-in

        with pytest.raises(ValueError, match="already registered"):
            register_strategy(Imposter)
        # Re-registering the same class is an idempotent no-op.
        from repro.search.engine.strategy import RandomSearch

        assert register_strategy(RandomSearch) is RandomSearch

    def test_custom_strategy_pluggable(self):
        class FirstN(SearchStrategy):
            """Rank the space in enumeration order — no model, no rng."""

            name = "first-n-test"
            uses_convergence = False

            def round_budget(self, loop):
                return 2

            def propose(self, loop):
                return [(c, loop.estimate(c)) for c in loop.space.candidates]

        try:
            register_strategy(FirstN)
            chain = gemm_chain(1, 256, 256, 64, 64, name="plug")
            report = MCFuserTuner(A100, strategy="first-n-test", seed=0).tune(chain)
            assert report.strategy == "first-n-test"
            assert report.search.num_measurements == 16  # 2 rounds x top_n
        finally:
            STRATEGY_REGISTRY.pop("first-n-test", None)


class TestStrategyParity:
    """Every registered strategy must find a schedule within 5% of
    EvolutionarySearch's best measured time (seeded, deterministic)."""

    @pytest.fixture(scope="class", params=["gemm", "attention"])
    def workload(self, request):
        if request.param == "gemm":
            chain = gemm_chain(1, 256, 256, 64, 64, name="par-gemm")
        else:
            chain = attention_chain(8, 256, 256, 64, 64, name="par-attn")
        baseline = MCFuserTuner(A100, seed=0).tune(chain)
        return chain, baseline

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_within_5_percent_of_evolutionary(self, workload, strategy):
        chain, baseline = workload
        report = MCFuserTuner(A100, seed=0, strategy=strategy).tune(chain)
        assert report.best_time <= 1.05 * baseline.best_time
        assert report.strategy == strategy

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_deterministic_given_seed(self, workload, strategy):
        chain, _ = workload
        a = MCFuserTuner(A100, seed=7, strategy=strategy).tune(chain)
        b = MCFuserTuner(A100, seed=7, strategy=strategy).tune(chain)
        assert a.best_candidate.key == b.best_candidate.key
        assert a.best_time == b.best_time
        assert a.tuning_seconds == b.tuning_seconds


class TestStrategyBehavior:
    def test_evolutionary_matches_legacy_tuner(self):
        """strategy="evolutionary" is behavior-identical to the default."""
        chain = gemm_chain(1, 256, 256, 64, 64, name="legacy-eq")
        default = MCFuserTuner(A100, seed=2).tune(chain)
        explicit = MCFuserTuner(A100, seed=2, strategy="evolutionary").tune(chain)
        assert default.best_candidate.key == explicit.best_candidate.key
        assert default.best_time == explicit.best_time
        assert default.tuning_seconds == explicit.tuning_seconds
        assert default.pruning == explicit.pruning

    def test_exhaustive_measures_everything(self):
        chain = gemm_chain(1, 256, 256, 64, 64, name="exh")
        report = MCFuserTuner(A100, seed=0, strategy="exhaustive").tune(chain)
        assert report.search.num_measurements == report.pruning.after_rule4
        # Exhaustive is the ground truth: nothing can beat it.
        evo = MCFuserTuner(A100, seed=0).tune(chain)
        assert report.best_time <= evo.best_time

    def test_annealing_respects_convergence(self):
        chain = gemm_chain(1, 256, 256, 64, 64, name="ann")
        report = MCFuserTuner(A100, seed=0, strategy="annealing").tune(chain)
        assert report.search.rounds <= 16
        assert report.search.num_measurements <= 8 * 16

    def test_annealing_parameters_validated(self):
        from repro.search.engine.strategy import SimulatedAnnealingSearch

        with pytest.raises(ValueError):
            SimulatedAnnealingSearch(initial_temperature=0.0)
        with pytest.raises(ValueError):
            SimulatedAnnealingSearch(cooling=1.5)


class TestSearchLoopBookkeeping:
    @pytest.fixture(scope="class")
    def space(self):
        from repro.search.space import generate_space

        return generate_space(gemm_chain(1, 256, 256, 64, 64, name="loop"), A100)

    def test_no_candidate_measured_twice(self, space):
        measured_calls = []

        def measure(c):
            measured_calls.append(c.key)
            return 1e-6 * (1 + hash(c.key) % 7)

        loop = SearchLoop(
            space,
            lambda c: 1e-6,
            ParallelEvaluator(measure),
            max_rounds=6,
            min_rounds=6,
            seed=0,
        )
        result = loop.run(make_strategy("random"))
        assert len(measured_calls) == len(set(measured_calls))
        assert result.num_measurements == len(measured_calls)

    def test_failed_candidates_blacklisted(self, space):
        loop = SearchLoop(
            space,
            lambda c: 1e-6,
            ParallelEvaluator(lambda c: float("inf")),
            max_rounds=3,
            seed=0,
        )
        result = loop.run(make_strategy("evolutionary"))
        assert result.best_time == float("inf")
        assert set(result.measured) == loop.failed

    def test_pairs_align_with_measurements(self, space):
        rng = np.random.default_rng(0)

        def measure(c):
            return float(1e-6 + 1e-7 * rng.random())

        loop = SearchLoop(
            space, lambda c: 1e-6, ParallelEvaluator(measure), seed=0
        )
        result = loop.run(make_strategy("random"))
        assert len(result.pairs) == result.num_measurements

    def test_empty_space_rejected(self, space):
        from repro.search.space import SearchSpace

        empty = SearchSpace.from_candidates(
            space.chain, space.gpu, [], space.stats, space.tile_options
        )
        with pytest.raises(ValueError):
            SearchLoop(empty, lambda c: 1e-6, ParallelEvaluator(lambda c: 1e-6))


class TestCacheStrategyFaithfulness:
    def test_entries_keyed_per_strategy(self, tmp_path):
        from repro.cache.cache import ScheduleCache

        chain = gemm_chain(1, 256, 256, 64, 64, name="faith")
        cache = ScheduleCache(tmp_path)
        rnd = MCFuserTuner(A100, seed=0, cache=cache, strategy="random").tune(chain)
        assert not rnd.cache_hit
        # A different strategy must not be served the random entry...
        evo = MCFuserTuner(A100, seed=0, cache=cache).tune(chain)
        assert not evo.cache_hit
        # ...but the same strategy is.
        again = MCFuserTuner(A100, seed=0, cache=cache, strategy="random").tune(chain)
        assert again.cache_hit
        assert again.best_time == rnd.best_time
        variants = {e.variant for e in cache.entries()}
        assert variants == {"mcfuser+random", "mcfuser"}

    def test_default_strategy_keeps_bare_variant(self):
        from repro.cache.signature import variant_key

        assert variant_key("mcfuser") == "mcfuser"
        assert variant_key("mcfuser", "evolutionary") == "mcfuser"
        assert variant_key("chimera", "annealing") == "chimera+annealing"
        tuner = MCFuserTuner(A100)
        assert tuner.cache_variant == "mcfuser"
