"""Shape tests for every experiment driver: the paper's qualitative claims
must hold on quick configurations."""

import math

import pytest

from repro.experiments import (
    fig2_roofline,
    fig7_pruning,
    fig8_subgraph,
    fig9_e2e,
    fig10_shmem,
    fig11_perf_model,
    table1_comparison,
    table4_tuning_time,
)
from repro.gpu.specs import A100


class TestFig2:
    @pytest.fixture(scope="class")
    def points(self):
        return fig2_roofline.matmul_points(A100, num_points=10)

    def test_monotone_phi(self, points):
        ratios = [p.phi_ops_per_byte for p in points]
        assert ratios == sorted(ratios, reverse=True)

    def test_throughput_collapses_when_memory_bound(self, points):
        assert points[0].tflops > 3 * points[-1].tflops

    def test_deep_memory_bound_tracks_roofline(self, points):
        tail = points[-1]
        ceiling = tail.phi_ops_per_byte * A100.mem_bandwidth / 1e12
        assert tail.tflops < 1.5 * ceiling

    def test_bound_classification_transitions(self, points):
        assert points[0].bound == "compute"
        assert points[-1].bound == "memory"

    def test_run_result_table(self):
        result = fig2_roofline.run(quick=True)
        assert len(result.rows) == 6
        assert "TFLOPS" in result.headers


class TestFig7:
    def test_paper_funnel(self):
        result = fig7_pruning.run()
        counts = [c for _, c in result.meta.items() if False] or [r[1] for r in result.rows]
        assert counts[0] == 109051904
        assert counts == sorted(counts, reverse=True)
        assert counts[-1] < 1e4  # paper: ~1e4 after all rules

    def test_rule1_cut_band(self):
        result = fig7_pruning.run()
        counts = [r[1] for r in result.rows]
        cut = 1 - counts[1] / counts[0]
        assert 0.7 < cut < 0.95  # paper: -80%


class TestFig8:
    @pytest.fixture(scope="class")
    def gemm_panel(self):
        return fig8_subgraph.run(A100, "gemm", quick=True, ansor_trials=128).meta["panel"]

    @pytest.fixture(scope="class")
    def attn_panel(self):
        return fig8_subgraph.run(A100, "attention", quick=True, ansor_trials=128).meta["panel"]

    def test_mcfuser_wins_on_average_gemm(self, gemm_panel):
        avg = {b: gemm_panel.average(b) for b in gemm_panel.baselines}
        assert avg["MCFuser"] == max(v for v in avg.values() if not math.isnan(v))
        assert avg["MCFuser"] > 1.5

    def test_mcfuser_wins_on_average_attention(self, attn_panel):
        avg = {b: attn_panel.average(b) for b in attn_panel.baselines}
        assert avg["MCFuser"] == max(v for v in avg.values() if not math.isnan(v))
        assert avg["MCFuser"] > 3.0

    def test_mcfuser_beats_chimera(self, attn_panel, gemm_panel):
        for panel in (attn_panel, gemm_panel):
            assert panel.average("MCFuser") >= 0.95 * panel.average("MCFuser-Chimera")

    def test_flashattention_only_on_attention(self, gemm_panel, attn_panel):
        assert all(
            row["FlashAttention"] is None for row in gemm_panel.speedups.values()
        )
        assert any(
            row["FlashAttention"] is not None for row in attn_panel.speedups.values()
        )

    def test_bolt_absent_on_3080(self):
        from repro.gpu.specs import RTX3080

        panel = fig8_subgraph.run(RTX3080, "gemm", quick=True, ansor_trials=64).meta["panel"]
        assert all(row["BOLT"] is None for row in panel.speedups.values())


class TestFig9:
    def test_headline_ratios(self):
        result = fig9_e2e.run(quick=True)
        panel = result.meta["panel"]
        assert panel.speedup("Bert-Small", "mcfuser+relay") > 1.15
        ansor = panel.results["Bert-Small"]["ansor"]
        mc_ansor = panel.results["Bert-Small"]["mcfuser+ansor"]
        assert ansor.time / mc_ansor.time > 1.1
        # MCFuser+Relay beats even Ansor, at a fraction of the tuning time.
        mc_relay = panel.results["Bert-Small"]["mcfuser+relay"]
        assert mc_relay.time < ansor.time
        assert mc_relay.tuning_seconds < 0.05 * ansor.tuning_seconds


class TestFig10:
    def test_quadrants(self):
        result = fig10_shmem.run(quick=True, per_chain=200)
        shares = {q: float(s.rstrip("%")) for (label, s), q in zip(result.rows, "I II III IV".split())}
        assert shares["I"] + shares["III"] > 80.0  # paper: > 90%
        assert shares["IV"] < 5.0
        assert shares["II"] < 20.0


class TestFig11:
    def test_correlations_strong_but_imperfect(self):
        result = fig11_perf_model.run(quick=True)
        for row in result.rows:
            corr = float(row[1])
            assert 0.55 < corr < 0.999  # paper band: 0.80-0.92


class TestStrategies:
    def test_quality_and_cost_ordering(self):
        from repro.experiments import strategies

        result = strategies.run(quick=True)
        reports = result.meta["reports"]
        for chain in ("G2", "S2"):
            exhaustive = reports[(chain, "exhaustive")]
            evo = reports[(chain, "evolutionary")]
            # Exhaustive is ground truth; every strategy stays within 5% of
            # the paper's Algorithm 1 (and never beats exhaustive).
            for name in ("evolutionary", "random", "annealing"):
                rep = reports[(chain, name)]
                assert rep.best_time <= 1.05 * evo.best_time
                assert rep.best_time >= exhaustive.best_time * 0.999
            assert evo.tuning_seconds < exhaustive.tuning_seconds
        # One row per (workload, strategy).
        assert len(result.rows) == 2 * len(
            {s for _, s in reports}
        )


class TestTables:
    def test_table1_probes(self):
        result = table1_comparison.run()
        checks = result.meta["probe_checks"]
        assert checks["bolt_fuses_gemm_chain"]
        assert not checks["bolt_fuses_attention"]
        assert checks["fa_supports_attention"]
        assert not checks["fa_supports_k_neq_h"]

    def test_table4_tuning_hierarchy(self):
        sub = table4_tuning_time.subgraph_tuning_times(A100, quick=True, ansor_trials=256)
        gemm = sub["GEMM Chain"]
        # Ansor orders of magnitude slower than MCFuser; BOLT in between.
        assert gemm["Ansor"] > 10 * gemm["MCFuser"]
        assert gemm["MCFuser"] < 150
        assert not math.isnan(gemm["BOLT"])
        attn = sub["Self Attention"]
        assert math.isnan(attn["BOLT"])  # BOLT cannot tune attention
