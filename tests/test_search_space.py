"""Unit tests for search-space generation and the Fig. 7 funnel."""

import pytest

from repro.gpu.specs import A100
from repro.ir.chain import gemm_chain
from repro.search.pruning import rule2_candidate_ok, rule4_ok
from repro.search.space import Candidate, generate_space
from repro.tiling.expr import TilingExpr


@pytest.fixture(scope="module")
def space():
    return generate_space(gemm_chain(1, 256, 256, 128, 128, name="sp"), A100)


class TestGeneration:
    def test_nonempty(self, space):
        assert len(space) > 50

    def test_all_candidates_valid(self, space):
        for cand in space.candidates[::7]:
            sched = space.schedule_for(cand)
            sched.check_valid()
            assert rule2_candidate_ok(sched)
            assert rule4_ok(sched, A100)

    def test_all_tiles_from_rule3(self, space):
        for cand in space.candidates:
            for loop, tile in cand.tiles:
                assert tile in space.tile_options[loop]

    def test_contains(self, space):
        cand = space.candidates[0]
        assert space.contains(cand)
        fake = Candidate.make(cand.expr, {"m": 272, "n": 16, "k": 16, "h": 16})
        assert not space.contains(fake)

    def test_deterministic(self):
        chain = gemm_chain(1, 256, 256, 128, 128, name="sp2")
        a = generate_space(chain, A100)
        b = generate_space(chain, A100)
        assert [c.key for c in a.candidates] == [c.key for c in b.candidates]

    def test_max_candidates_cap(self):
        chain = gemm_chain(1, 256, 256, 128, 128, name="sp3")
        capped = generate_space(chain, A100, max_candidates=20)
        assert len(capped) == 20

    def test_deep_only_excludes_flat(self):
        chain = gemm_chain(1, 256, 256, 128, 128, name="sp4")
        deep = generate_space(chain, A100, deep_only=True)
        assert all(c.expr.is_deep for c in deep.candidates)

    def test_full_space_includes_flat(self, space):
        assert any(not c.expr.is_deep for c in space.candidates)


class TestFunnel:
    def test_paper_example_counts(self):
        """The Fig. 7 configuration: M=N=1024, K=H=512."""
        chain = gemm_chain(1, 1024, 1024, 512, 512, name="fig7t")
        stats = generate_space(chain, A100).stats
        assert stats.expressions == 26
        assert stats.original == 26 * 64 * 64 * 32 * 32  # 109,051,904
        assert stats.classes_rule1 == 3
        assert stats.classes_rule2 == 2
        assert stats.after_rule1 == 3 * 64 * 64 * 32 * 32
        # Rule 3 cuts ~99.97% of tile combinations.
        assert stats.after_rule3 < stats.after_rule2 * 1e-3
        # Rule 4 removes a meaningful further fraction.
        assert stats.after_rule4 < stats.after_rule3
        assert stats.after_rule4 > 100

    def test_funnel_monotone(self, space):
        counts = [c for _, c in space.stats.funnel()]
        assert counts == sorted(counts, reverse=True)

    def test_candidate_key_describe(self, space):
        cand = space.candidates[0]
        assert cand.expr.render() in cand.describe()
        assert cand.tile_dict.keys() == {"m", "n", "k", "h"}
