"""Differential harness for the vectorized batched executor.

Every schedule both backends can run must produce the same result — the
scalar interpreter, the vectorized executor, and ``ComputeChain.reference``
agree within fp32 tolerance across random chains x tiling expressions x
tile sizes (non-divisible shapes included). Schedules only one backend can
express must degrade identically: the ``auto`` backend falls back to the
scalar interpreter, explicit ``vectorized`` raises ``LoweringError``, and
genuinely invalid schedules raise the same error everywhere.
"""

import numpy as np
import pytest

from repro.codegen.interpreter import (
    EXEC_BACKENDS,
    InterpreterError,
    execute_schedule,
    resolve_exec_backend,
)
from repro.codegen.program import LoweringError, lower_schedule
from repro.codegen.runtime import compile_schedule
from repro.gpu.specs import A100
from repro.ir.chain import (
    ComputeBlock,
    ComputeChain,
    TensorRef,
    attention_chain,
    gemm3_chain,
    gemm_chain,
)
from repro.tiling.enumeration import all_tilings
from repro.tiling.expr import TilingExpr
from repro.tiling.schedule import InvalidScheduleError, build_schedule
from repro.utils import rng_for

#: fp32 tolerance. scalar-vs-vectorized differ only by BLAS contraction
#: reassociation (batched vs per-tile GEMM); either-vs-reference adds the
#: usual fused-vs-unfused accumulation-order gap.
BACKEND_RTOL, BACKEND_ATOL = 1e-4, 1e-5
REF_RTOL, REF_ATOL = 1e-4, 1e-5


def both_backends(schedule, inputs):
    """(scalar result | error, vectorized result | error) for one schedule."""
    results = []
    for backend in ("scalar", "vectorized"):
        try:
            results.append(execute_schedule(schedule, inputs, backend=backend))
        except (InterpreterError, InvalidScheduleError) as exc:
            results.append(exc)
    return results


def assert_parity(chain, schedule, inputs, ref):
    scalar, vectorized = both_backends(schedule, inputs)
    if isinstance(scalar, Exception):
        # the vectorized path must fail too — either because lowering
        # rejected the program (LoweringError) or at execution time with
        # the same error class.
        assert isinstance(vectorized, Exception), (
            f"{schedule.describe()}: scalar raised {scalar!r} but "
            f"vectorized succeeded"
        )
        return False
    assert not isinstance(vectorized, Exception), (
        f"{schedule.describe()}: vectorized raised {vectorized!r} but "
        f"scalar succeeded"
    )
    out = chain.output
    np.testing.assert_allclose(
        vectorized[out], scalar[out],
        rtol=BACKEND_RTOL, atol=BACKEND_ATOL,
        err_msg=f"backend divergence on {schedule.describe()}",
    )
    np.testing.assert_allclose(
        vectorized[out], ref,
        rtol=REF_RTOL, atol=REF_ATOL,
        err_msg=f"reference divergence on {schedule.describe()}",
    )
    return True


# -- random differential sweep --------------------------------------------------


def _random_tiles(rng, chain):
    """Random tile sizes: mostly pow2-ish, sometimes odd, sometimes full."""
    tiles = {}
    for loop, size in chain.loops.items():
        choice = rng.choice(["pow2", "odd", "full"], p=[0.6, 0.2, 0.2])
        if choice == "full":
            tiles[loop] = size
        elif choice == "pow2":
            tiles[loop] = int(rng.choice([8, 16, 32, 48]))
        else:
            tiles[loop] = int(rng.integers(5, max(6, size // 2 + 1)))
    return tiles


def _random_chain(rng, i):
    kind = ["gemm", "attention", "gemm3"][i % 3]
    def dim():
        return int(rng.integers(17, 97))
    batch = int(rng.integers(1, 4))
    epilogue = [None, "relu", "gelu"][int(rng.integers(0, 3))]
    if kind == "gemm":
        return gemm_chain(batch, dim(), dim(), dim(), dim(),
                          name=f"rand-g{i}", epilogue=epilogue)
    if kind == "attention":
        return attention_chain(batch, dim(), dim(), dim(), dim(), name=f"rand-a{i}")
    return gemm3_chain(batch, dim(), dim(), dim(), dim(), dim(),
                       name=f"rand-3g{i}", epilogue=epilogue)


class TestRandomDifferential:
    @pytest.mark.parametrize("case", range(9))
    def test_random_chain_expr_tiles(self, case):
        """Random chains x sampled expressions x random tile sizes."""
        rng = rng_for("vec-parity", case)
        chain = _random_chain(rng, case)
        inputs = chain.random_inputs(case)
        ref = chain.reference(inputs)[chain.output]
        exprs = list(all_tilings(chain))
        picks = rng.choice(len(exprs), size=min(6, len(exprs)), replace=False)
        ran = 0
        for pick in picks:
            tiles = _random_tiles(rng, chain)
            schedule = build_schedule(chain, exprs[int(pick)], tiles)
            ran += assert_parity(chain, schedule, inputs, ref)
        # at least one sampled schedule must actually execute, otherwise
        # the sweep silently degrades into error-parity only.
        assert ran >= 1

    def test_exhaustive_small_gemm(self, small_gemm):
        """Every enumerated expression: run-parity and error-parity."""
        tiles = {"m": 16, "n": 16, "k": 16, "h": 16}
        inputs = small_gemm.random_inputs(1)
        ref = small_gemm.reference(inputs)[small_gemm.output]
        ran = sum(
            assert_parity(small_gemm, build_schedule(small_gemm, expr, tiles),
                          inputs, ref)
            for expr in all_tilings(small_gemm)
        )
        assert ran >= 1


# -- non-divisible shapes --------------------------------------------------------


class TestRaggedShapes:
    @pytest.mark.parametrize("expr,tiles", [
        ("mhnk", {"m": 32, "n": 32, "k": 32, "h": 32}),
        ("mhnk", {"m": 48, "n": 16, "k": 64, "h": 48}),
        ("mn(k,h)", {"m": 48, "n": 16, "k": 32, "h": 64}),
    ])
    def test_ragged_gemm(self, ragged_gemm, expr, tiles):
        inputs = ragged_gemm.random_inputs(0)
        ref = ragged_gemm.reference(inputs)[ragged_gemm.output]
        schedule = build_schedule(ragged_gemm, TilingExpr.parse(expr), tiles)
        assert_parity(ragged_gemm, schedule, inputs, ref)

    def test_ragged_attention_padded_softmax(self):
        """The online-softmax padding mask under a non-divisible n."""
        chain = attention_chain(2, 100, 84, 24, 40, name="vp-rag-attn")
        inputs = chain.random_inputs(3)
        ref = chain.reference(inputs)[chain.output]
        for expr, tiles in [
            ("mhnk", {"m": 32, "n": 32, "k": 32, "h": 48}),
            ("mn(k,h)", {"m": 48, "n": 16, "k": 32, "h": 48}),
        ]:
            schedule = build_schedule(chain, TilingExpr.parse(expr), tiles)
            assert assert_parity(chain, schedule, inputs, ref)


class TestBucketCeilingSchedules:
    """Dynamic-shape bucketing (issue 8): schedules tuned at a power-of-two
    bucket ceiling execute on any shorter in-bucket length with tail tiles
    masked. Scalar and vectorized must agree with the reference at every
    ragged length — non-pow2, prime, and just-below-ceiling — for every
    ceiling-legal (divisor) tile size."""

    # prime, just-below-ceiling, non-pow2, just-above-half-bucket
    LENGTHS = (97, 127, 96, 65)

    @pytest.mark.parametrize("m", LENGTHS)
    def test_gemm_ceiling_tiles_at_in_bucket_length(self, m):
        from repro.cache.signature import bucket_of
        from repro.search.pruning import bucket_tile_options

        ceiling = bucket_of(m)
        chain = gemm_chain(1, m, 64, 32, 48, name=f"vp-bucket-{m}")
        inputs = chain.random_inputs(m)
        ref = chain.reference(inputs)[chain.output]
        ran = 0
        for tm in bucket_tile_options(ceiling):
            schedule = build_schedule(
                chain, TilingExpr.parse("mhnk"),
                {"m": tm, "n": 32, "k": 32, "h": 48},
            )
            ran += assert_parity(chain, schedule, inputs, ref)
        assert ran >= 1

    def test_attention_ceiling_tiles_both_seq_dims(self):
        from repro.search.pruning import bucket_tile_options

        # m=101 (prime) and n=75 (non-pow2) in buckets 128 / 128
        chain = attention_chain(2, 101, 75, 24, 40, name="vp-bucket-attn")
        inputs = chain.random_inputs(5)
        ref = chain.reference(inputs)[chain.output]
        ran = 0
        for tm in bucket_tile_options(128):
            schedule = build_schedule(
                chain, TilingExpr.parse("mn(k,h)"),
                {"m": tm, "n": 32, "k": 24, "h": 40},
            )
            ran += assert_parity(chain, schedule, inputs, ref)
        assert ran >= 1


# -- softmax accumulator rank fix (satellite bugfix) -----------------------------


def _rank1_softmax_chain():
    """O[m] = softmax_n(S[m,n]) x V[n] — rank-1 output tiles."""
    loops = {"m": 64, "n": 48, "k": 32}
    tensors = {
        "Q": TensorRef("Q", ("m", "k"), "input"),
        "K": TensorRef("K", ("n", "k"), "input"),
        "S": TensorRef("S", ("m", "n"), "intermediate"),
        "V": TensorRef("V", ("n",), "input"),
        "O": TensorRef("O", ("m",), "output"),
    }
    blocks = (
        ComputeBlock("S", ("Q", "K"), "S", ("m", "n"), ("k",)),
        ComputeBlock("O", ("S", "V"), "O", ("m",), ("n",), softmax_over="n"),
    )
    return ComputeChain("rank1-softmax", loops, blocks, tensors, batch=2)


def _rank3_softmax_chain():
    """O[m,g,h] = softmax_n(S[m,g,n]) x V[n,h] — rank-3 output tiles."""
    loops = {"m": 32, "g": 24, "n": 40, "k": 16, "h": 24}
    tensors = {
        "Q": TensorRef("Q", ("m", "g", "k"), "input"),
        "K": TensorRef("K", ("n", "k"), "input"),
        "S": TensorRef("S", ("m", "g", "n"), "intermediate"),
        "V": TensorRef("V", ("n", "h"), "input"),
        "O": TensorRef("O", ("m", "g", "h"), "output"),
    }
    blocks = (
        ComputeBlock("S", ("Q", "K"), "S", ("m", "g", "n"), ("k",)),
        ComputeBlock("O", ("S", "V"), "O", ("m", "g", "h"), ("n",), softmax_over="n"),
    )
    return ComputeChain("rank3-softmax", loops, blocks, tensors, batch=2)


class TestSoftmaxRankGenerality:
    """The historical accumulator hardcoded 2-D (rows, cols) tiles; the row
    state must follow the actual non-softmax dims for any rank."""

    @pytest.mark.parametrize("backend", ["scalar", "vectorized"])
    def test_rank1_output(self, backend):
        chain = _rank1_softmax_chain()
        inputs = chain.random_inputs(0)
        ref = chain.reference(inputs)[chain.output]
        schedule = build_schedule(
            chain, TilingExpr.parse("mnk"), {"m": 16, "n": 16, "k": 32}
        )
        out = execute_schedule(schedule, inputs, backend=backend)[chain.output]
        np.testing.assert_allclose(out, ref, rtol=REF_RTOL, atol=REF_ATOL)

    @pytest.mark.parametrize("backend", ["scalar", "vectorized"])
    def test_rank3_output(self, backend):
        chain = _rank3_softmax_chain()
        inputs = chain.random_inputs(0)
        ref = chain.reference(inputs)[chain.output]
        schedule = build_schedule(
            chain,
            TilingExpr.parse("mgn(k,h)"),
            {"m": 16, "g": 8, "n": 16, "k": 16, "h": 24},
        )
        out = execute_schedule(schedule, inputs, backend=backend)[chain.output]
        np.testing.assert_allclose(out, ref, rtol=REF_RTOL, atol=REF_ATOL)

    def test_rank3_ragged_parity(self):
        chain = _rank3_softmax_chain()
        inputs = chain.random_inputs(1)
        ref = chain.reference(inputs)[chain.output]
        schedule = build_schedule(
            chain,
            TilingExpr.parse("mgnkh"),
            {"m": 16, "g": 16, "n": 16, "k": 16, "h": 16},
        )
        assert assert_parity(chain, schedule, inputs, ref)


class TestRecomputeAccumulatorReset:
    """Regression: a producer recomputed under an unrelated loop must
    re-zero its accumulator on every fresh reduction sweep.

    In ``npmhk`` on a 3-GEMM chain, block C (reduction ``k``) sits inside
    the unrelated loop ``h``; C's spatial key does not change when ``h``
    advances, so the historical interpreter kept accumulating k-sweeps on
    top of each other — both backends now honor init-on-first-reduction-
    iteration semantics instead.
    """

    @pytest.mark.parametrize("backend", ["scalar", "vectorized"])
    def test_producer_under_unrelated_loop(self, backend):
        chain = gemm3_chain(2, 40, 25, 70, 66, 42, name="recompute-reset")
        inputs = chain.random_inputs(0)
        ref = chain.reference(inputs)[chain.output]
        schedule = build_schedule(
            chain,
            TilingExpr.parse("npmhk"),
            {"m": 8, "n": 32, "k": 8, "h": 16, "p": 19},
        )
        out = execute_schedule(schedule, inputs, backend=backend)[chain.output]
        np.testing.assert_allclose(out, ref, rtol=REF_RTOL, atol=REF_ATOL)


# -- backend selection and fallback ---------------------------------------------


class TestBackendSelection:
    def test_backend_names(self):
        assert EXEC_BACKENDS == ("auto", "compiled", "vectorized", "scalar")

    def test_unknown_backend_rejected(self, small_gemm):
        schedule = build_schedule(
            small_gemm, TilingExpr.parse("mhnk"), {"m": 32, "n": 16, "k": 16, "h": 16}
        )
        with pytest.raises(ValueError):
            execute_schedule(schedule, small_gemm.random_inputs(0), backend="cuda")
        with pytest.raises(ValueError):
            resolve_exec_backend(schedule, "cuda")

    def test_auto_picks_vectorized_for_plain_gemm(self, small_gemm):
        schedule = build_schedule(
            small_gemm, TilingExpr.parse("mhnk"), {"m": 32, "n": 16, "k": 16, "h": 16}
        )
        assert resolve_exec_backend(schedule) == "vectorized"
        assert resolve_exec_backend(schedule, "scalar") == "scalar"

    def test_multicopy_lowering_rejected_and_auto_falls_back(self, small_gemm):
        # mn(k,h) with small tiles needs multiple live copies of C: the
        # scalar interpreter rejects it, so auto must surface the same
        # InterpreterError (LoweringError is a subclass).
        schedule = build_schedule(
            small_gemm, TilingExpr.parse("mn(k,h)"), {"m": 32, "n": 16, "k": 16, "h": 16}
        )
        with pytest.raises(LoweringError):
            lower_schedule(schedule)
        with pytest.raises(InterpreterError):
            execute_schedule(schedule, small_gemm.random_inputs(0), backend="vectorized")
        with pytest.raises(InterpreterError):
            execute_schedule(schedule, small_gemm.random_inputs(0), backend="auto")
        assert resolve_exec_backend(schedule, "auto") == "scalar"

    def test_invalid_order_raises_everywhere(self, small_gemm):
        schedule = build_schedule(
            small_gemm, TilingExpr.parse("mhkn"), {"m": 32, "n": 16, "k": 16, "h": 16}
        )
        for backend in EXEC_BACKENDS:
            with pytest.raises(InvalidScheduleError):
                execute_schedule(schedule, small_gemm.random_inputs(0), backend=backend)

    def test_oversized_program_falls_back(self, small_gemm):
        schedule = build_schedule(
            small_gemm, TilingExpr.parse("mhnk"), {"m": 16, "n": 16, "k": 16, "h": 16}
        )
        with pytest.raises(LoweringError):
            lower_schedule(schedule, max_ops=2)
        with pytest.raises(LoweringError):
            lower_schedule(schedule, max_gather_bytes=16)

    def test_missing_input_and_bad_shape(self, small_gemm):
        schedule = build_schedule(
            small_gemm, TilingExpr.parse("mhnk"), {"m": 32, "n": 16, "k": 16, "h": 16}
        )
        with pytest.raises(KeyError):
            execute_schedule(schedule, {}, backend="vectorized")
        inputs = small_gemm.random_inputs(0)
        inputs["A"] = inputs["A"][:1]
        with pytest.raises(ValueError):
            execute_schedule(schedule, inputs, backend="vectorized")

    def test_vectorized_deterministic(self, small_attention):
        schedule = build_schedule(
            small_attention, TilingExpr.parse("mhnk"),
            {"m": 32, "n": 32, "k": 16, "h": 32},
        )
        inputs = small_attention.random_inputs(0)
        a = execute_schedule(schedule, inputs, backend="vectorized")["O"]
        b = execute_schedule(schedule, inputs, backend="vectorized")["O"]
        np.testing.assert_array_equal(a, b)


class TestZooBackendSelection:
    """End-to-end: zoo models compile to lowered-backend modules (compiled
    when a C compiler is present and the chain is big enough, vectorized
    otherwise) and the modules agree with the reference on every backend
    (the CI exec-smoke job runs this class in quick mode)."""

    @pytest.mark.parametrize("model", ["ffn-base", "gqa-32x8"])
    def test_zoo_model_vectorized_and_parity(self, model):
        from repro.frontend.executor import compile_model

        result = compile_model(
            model,
            A100,
            tuner_kwargs={"population_size": 64, "max_rounds": 2, "min_rounds": 1},
        )
        backends = result.detail["exec_backend"]
        lowered = backends.get("vectorized", 0) + backends.get("compiled", 0)
        assert lowered >= 1, backends
        seen = set()
        for module in result.module.operator_modules:
            if id(module) in seen:  # shape-deduplicated modules
                continue
            seen.add(id(module))
            chain = module.schedule.chain
            inputs = chain.random_inputs(0)
            ref = chain.reference(inputs)[chain.output]
            out = module.run(inputs)[chain.output]
            np.testing.assert_allclose(out, ref, rtol=1e-3, atol=1e-4)
            scalar = module.run(inputs, backend="scalar")[chain.output]
            # zoo FFN chains contract over thousands of elements, so the
            # backends' BLAS reassociation gap grows with the reduction.
            np.testing.assert_allclose(out, scalar, rtol=1e-3, atol=1e-4)


class TestProgramLowering:
    def test_program_shape(self, small_gemm):
        schedule = build_schedule(
            small_gemm, TilingExpr.parse("mhnk"), {"m": 32, "n": 16, "k": 16, "h": 16}
        )
        program = lower_schedule(schedule)
        assert program.grid_loops[0] == ("b", small_gemm.batch)
        assert program.n_cells == schedule.grid_size  # grid includes batch
        kinds = {op.kind for op in program.ops}
        assert kinds == {"load", "compute", "store"}
        # one op per statement execution of one grid cell
        per_cell = sum(
            schedule.trip_count(s) // schedule.grid_size for s in schedule.statements()
        )
        assert len(program.ops) == per_cell
        assert "cells=" in program.describe()
        assert program.ops[0].label().startswith(("L", "C", "S"))

    def test_operator_module_backend(self, small_gemm):
        schedule = build_schedule(
            small_gemm, TilingExpr.parse("mhnk"), {"m": 32, "n": 16, "k": 16, "h": 16}
        )
        module = compile_schedule(schedule, A100, exec_backend="auto")
        assert module.resolved_exec_backend == "vectorized"
        pinned = compile_schedule(schedule, A100, exec_backend="scalar")
        assert pinned.resolved_exec_backend == "scalar"
        assert pinned is not module  # memo keyed per backend
        inputs = small_gemm.random_inputs(0)
        np.testing.assert_allclose(
            module.run(inputs)["E"], pinned.run(inputs)["E"],
            rtol=BACKEND_RTOL, atol=BACKEND_ATOL,
        )
        with pytest.raises(ValueError):
            compile_schedule(schedule, A100, exec_backend="cuda", memoize=False)
