"""Tests for the baseline systems: Ansor, BOLT, FlashAttention, Chimera —
including every support-envelope gap the paper relies on."""

import pytest

from repro.baselines import (
    AnsorBaseline,
    BOLTBaseline,
    FlashAttentionBaseline,
    MCFuserBaseline,
    MCFuserChimeraBaseline,
    PyTorchBaseline,
    RelayBaseline,
    default_baselines,
)
from repro.baselines.flash_attention import fa1_block_sizes
from repro.gpu.specs import A100, RTX3080
from repro.ir.chain import attention_chain, gemm_chain


@pytest.fixture
def gemm():
    return gemm_chain(1, 256, 256, 64, 64, name="bs-g")


@pytest.fixture
def attn():
    return attention_chain(8, 256, 256, 64, 64, name="bs-a")


class TestAnsor:
    def test_sketch_space_deep_pow2_only(self, gemm):
        ansor = AnsorBaseline(trials=64)
        for cand in ansor.sketch_space(gemm, A100):
            assert cand.expr.is_deep
            for _, t in cand.tiles:
                assert t & (t - 1) == 0

    def test_runs_and_reports(self, gemm):
        r = AnsorBaseline(trials=128, seed=0).run_chain(gemm, A100, seed=0)
        assert r.time > 0
        assert r.detail["trials"] > 0
        assert r.tuning_seconds > 100  # trials are expensive

    def test_tuning_time_scales_with_trials(self, gemm):
        small = AnsorBaseline(trials=64).run_chain(gemm, A100, seed=0)
        big = AnsorBaseline(trials=512).run_chain(gemm, A100, seed=0)
        assert big.tuning_seconds > small.tuning_seconds

    def test_fallback_time_bounded_by_unfused(self, gemm):
        r = AnsorBaseline(trials=128).run_chain(gemm, A100, seed=0)
        assert r.time <= r.detail["unfused_time"] * (1 + 1e-9)


class TestBOLT:
    def test_no_sm86(self, gemm):
        assert BOLTBaseline().run_chain(gemm, RTX3080, seed=0) is None

    def test_fuses_gemm_chain_on_a100(self, gemm):
        r = BOLTBaseline().run_chain(gemm, A100, seed=0)
        assert r is not None
        assert r.detail["templates"] > 0

    def test_attention_not_in_pattern_table(self, attn):
        bolt = BOLTBaseline()
        assert not bolt.supports_fusion(attn)
        r = bolt.run_chain(attn, A100, seed=0)
        assert r is not None  # falls back to unfused
        assert not r.fused

    def test_large_n_falls_back(self):
        """The paper's G11/G12 behaviour: huge N overwhelms the template."""
        big = gemm_chain(8, 1024, 1024, 128, 128, name="bs-g12")
        r = BOLTBaseline().run_chain(big, A100, seed=0)
        assert r is not None
        assert r.time == pytest.approx(r.detail["unfused_time"]) or not r.fused

    def test_small_n_fused_beats_fallback(self, gemm):
        r = BOLTBaseline().run_chain(gemm, A100, seed=0)
        assert r.fused
        assert r.time < r.detail["unfused_time"]


class TestFlashAttention:
    def test_rejects_k_neq_h(self):
        chain = attention_chain(8, 256, 256, 64, 128, name="bs-kh")
        assert FlashAttentionBaseline().run_chain(chain, A100, seed=0) is None

    def test_rejects_gemm_chain(self, gemm):
        assert FlashAttentionBaseline().run_chain(gemm, A100, seed=0) is None

    def test_rejects_large_head_dim(self):
        chain = attention_chain(8, 256, 256, 160, 160, name="bs-big")
        assert FlashAttentionBaseline().run_chain(chain, A100, seed=0) is None

    def test_supports_head_dim_80(self):
        chain = attention_chain(16, 256, 256, 80, 80, name="bs-s6")
        r = FlashAttentionBaseline().run_chain(chain, A100, seed=0)
        assert r is not None and r.fused

    def test_v1_grid_is_batch_heads(self, attn):
        r = FlashAttentionBaseline().run_chain(attn, A100, seed=0)
        assert r.detail["grid"] == attn.batch

    def test_zero_tuning_time(self, attn):
        r = FlashAttentionBaseline().run_chain(attn, A100, seed=0)
        assert r.tuning_seconds == 0.0

    def test_block_table_shrinks_with_head_dim(self):
        br32, _ = fa1_block_sizes(32, A100)
        br128, _ = fa1_block_sizes(128, A100)
        assert br32 > br128

    def test_more_heads_better_utilization(self):
        few = attention_chain(2, 512, 512, 64, 64, name="bs-few")
        many = attention_chain(32, 512, 512, 64, 64, name="bs-many")
        fa = FlashAttentionBaseline()
        t_few = fa.run_chain(few, A100, seed=0).time
        t_many = fa.run_chain(many, A100, seed=0).time
        # 16x the work, but far better than 16x the time (v1 starves at 2 CTAs)
        assert t_many < 8 * t_few


class TestWrappers:
    def test_chimera_wrapper(self, gemm):
        r = MCFuserChimeraBaseline().run_chain(gemm, A100, seed=0)
        assert r.name == "MCFuser-Chimera"
        assert "mhnk" in r.detail["best"] or "mh" in r.detail["best"]

    def test_mcfuser_wrapper(self, gemm):
        r = MCFuserBaseline().run_chain(gemm, A100, seed=0)
        assert r.name == "MCFuser"
        assert r.fused
        assert r.detail["pruning"][0][0] == "original"

    def test_relay_baseline(self, gemm):
        r = RelayBaseline().run_chain(gemm, A100, seed=0)
        assert r.tuning_seconds > 0
        assert not r.fused

    def test_default_lineup_order(self):
        names = [b.name for b in default_baselines()]
        assert names == [
            "PyTorch",
            "Ansor",
            "BOLT",
            "FlashAttention",
            "MCFuser-Chimera",
            "MCFuser",
        ]


class TestHeadlineOrdering:
    """The paper's core claims, as assertions."""

    def test_mcfuser_beats_pytorch_on_mbci(self, gemm):
        pt = PyTorchBaseline().run_chain(gemm, A100, seed=0).time
        mc = MCFuserBaseline().run_chain(gemm, A100, seed=0).time
        assert pt / mc > 1.5

    def test_mcfuser_beats_flashattention(self, attn):
        fa = FlashAttentionBaseline().run_chain(attn, A100, seed=0).time
        mc = MCFuserBaseline().run_chain(attn, A100, seed=0).time
        assert fa / mc > 1.2

    def test_mcfuser_tunes_much_faster_than_ansor(self, gemm):
        ansor = AnsorBaseline(trials=1000).run_chain(gemm, A100, seed=0)
        mc = MCFuserBaseline().run_chain(gemm, A100, seed=0)
        assert ansor.tuning_seconds / mc.tuning_seconds > 20
