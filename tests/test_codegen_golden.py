"""Golden-source tests: canonical TilePrograms render to checked-in text.

Two canonical lowered programs — flat-tiled attention (online softmax) and
a 3-GEMM chain with a recomputed producer — must render to exactly the C
and Triton sources stored under ``tests/golden/``, compared with
normalized whitespace. Any intentional change to either emitter is made
visible in review as a diff of the golden files.

Regenerate after an intentional emitter change with::

    PYTHONPATH=src python tests/test_codegen_golden.py --regen
"""

import pathlib

import pytest

from repro.codegen.program import lower_schedule
from repro.codegen.render_c import render_program
from repro.codegen.triton_ir import triton_from_program
from repro.ir.chain import attention_chain, gemm3_chain
from repro.tiling.expr import TilingExpr
from repro.tiling.schedule import build_schedule

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


def _attention_program():
    chain = attention_chain(2, 64, 64, 32, 32, name="golden-attn")
    schedule = build_schedule(
        chain, TilingExpr.parse("mn(k,h)"), {"m": 32, "n": 32, "k": 32, "h": 32}
    )
    return lower_schedule(schedule)


def _gemm3_program():
    chain = gemm3_chain(2, 40, 25, 70, 66, 42, name="golden-3gemm")
    schedule = build_schedule(
        chain,
        TilingExpr.parse("npmhk"),
        {"m": 8, "n": 32, "k": 8, "h": 16, "p": 19},
    )
    return lower_schedule(schedule)


CASES = {
    "attention": _attention_program,
    "gemm3": _gemm3_program,
}


def normalize(text: str) -> str:
    """Whitespace-insensitive comparison form: trailing space and blank
    lines are noise, indentation and token spacing are semantics."""
    return "\n".join(
        line.rstrip() for line in text.strip().splitlines() if line.strip()
    )


def _render(name: str) -> tuple[str, str]:
    program = CASES[name]()
    return render_program(program).source, triton_from_program(program).render()


@pytest.mark.parametrize("name", sorted(CASES))
def test_c_source_matches_golden(name):
    c_source, _ = _render(name)
    golden = (GOLDEN_DIR / f"{name}.c").read_text()
    assert normalize(c_source) == normalize(golden), (
        f"C emission for {name} changed; regenerate tests/golden/{name}.c "
        "if intentional (see module docstring)"
    )


@pytest.mark.parametrize("name", sorted(CASES))
def test_triton_source_matches_golden(name):
    _, triton_source = _render(name)
    golden = (GOLDEN_DIR / f"{name}.triton").read_text()
    assert normalize(triton_source) == normalize(golden), (
        f"Triton emission for {name} changed; regenerate "
        f"tests/golden/{name}.triton if intentional (see module docstring)"
    )


@pytest.mark.parametrize("name", sorted(CASES))
def test_golden_structure(name):
    """Load-bearing structure of the canonical kernels, independent of the
    exact golden text: entry point, softmax machinery, accumulator reset."""
    program = CASES[name]()
    meta = render_program(program)
    assert meta.entry == "mcfuser_kernel"
    assert "#pragma omp parallel for" in meta.source
    assert "-ffast-math" not in meta.source
    if name == "attention":
        assert "INFINITY" in meta.source  # row-max init for online softmax
        assert "expf" in meta.source
    if name == "gemm3":
        # the recomputed producer resets on every fresh reduction sweep
        assert meta.source.count("memset") >= 3


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        GOLDEN_DIR.mkdir(exist_ok=True)
        for name in CASES:
            c_source, triton_source = _render(name)
            (GOLDEN_DIR / f"{name}.c").write_text(c_source)
            (GOLDEN_DIR / f"{name}.triton").write_text(triton_source + "\n")
            print(f"regenerated {name}")
    else:
        print(__doc__)
