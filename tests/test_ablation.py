"""Quick tests for the ablation driver (full run lives in benchmarks/)."""

import pytest

from repro.experiments.ablation import ablate_chain
from repro.gpu.specs import A100
from repro.ir.chain import gemm_chain


@pytest.fixture(scope="module")
def row():
    chain = gemm_chain(1, 256, 256, 64, 64, name="abl-q")
    return ablate_chain(chain, A100, seed=0)


class TestAblation:
    def test_all_variants_ran(self, row):
        for value in (row.full, row.no_flat, row.no_dag_opt, row.movement_model,
                      row.random_model, row.top1):
            assert 0 < value < float("inf")

    def test_no_variant_beats_full_materially(self, row):
        for variant in (row.no_flat, row.no_dag_opt, row.movement_model, row.random_model):
            assert variant >= 0.9 * row.full

    def test_top1_never_better_than_top8(self, row):
        assert row.top1 >= 0.99 * row.full
