"""Unit tests for runtime modules (OperatorModule / GraphExecutorFactory)."""

import numpy as np
import pytest

from repro.codegen.runtime import GraphExecutorFactoryModule, OperatorModule, compile_schedule
from repro.gpu.kernel import KernelLaunch
from repro.gpu.simulator import GPUSimulator
from repro.gpu.specs import A100
from repro.tiling.expr import TilingExpr
from repro.tiling.schedule import build_schedule

TILES = {"m": 32, "n": 16, "k": 16, "h": 16}


@pytest.fixture
def module(small_gemm):
    sched = build_schedule(small_gemm, TilingExpr.parse("mhnk"), TILES)
    return compile_schedule(sched, A100)


class TestOperatorModule:
    def test_run_matches_reference(self, module, small_gemm):
        inputs = small_gemm.random_inputs(0)
        out = module.run(inputs)["E"]
        ref = small_gemm.reference(inputs)["E"]
        np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-5)

    def test_time_positive_and_deterministic(self, module):
        sim = GPUSimulator(A100, seed=0)
        assert module.time(sim) == module.time(sim) > 0

    def test_kernel_cached(self, module):
        assert module.kernel is module.kernel

    def test_triton_and_ptx_attached(self, module):
        assert "tl.dot" in module.triton.render()
        assert ".entry" in module.ptx


class TestFactoryModule:
    def _kernel(self, name):
        return KernelLaunch(
            name=name,
            grid=108,
            flops=1e9,
            dram_read_bytes=1e6,
            dram_write_bytes=1e5,
            shared_mem_bytes=4096,
        )

    def test_time_sums_plan(self):
        factory = GraphExecutorFactoryModule(name="f", gpu=A100)
        factory.add("k1", self._kernel("k1"))
        factory.add("k2", self._kernel("k2"))
        sim = GPUSimulator(A100, seed=0)
        assert factory.time(sim) == pytest.approx(
            sim.run(self._kernel("k1")) + sim.run(self._kernel("k2"))
        )

    def test_add_module(self, module):
        factory = GraphExecutorFactoryModule(name="f", gpu=A100)
        factory.add_module(module)
        assert factory.kernel_count() == 1
        assert factory.operator_modules == [module]

    def test_breakdown_labels(self, module):
        factory = GraphExecutorFactoryModule(name="f", gpu=A100)
        factory.add("lib:x", self._kernel("x"))
        factory.add_module(module)
        breakdown = factory.breakdown()
        assert len(breakdown) == 2
        assert breakdown[0][0] == "lib:x"
        assert breakdown[1][0].startswith("mcfuser:")
