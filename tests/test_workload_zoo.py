"""Workload zoo: registry behavior and end-to-end fusion per family.

The acceptance bar for the general-DAG partitioner: each new workload
family (FFN/MLP, LoRA, GQA, cross-attention, residual branch) flows
through partition -> tune -> codegen -> interpreter and matches the
unfused graph execution.
"""

import numpy as np
import pytest

from repro.codegen.runtime import compile_schedule
from repro.frontend.executor import compile_model
from repro.frontend.partition import partition_graph
from repro.gpu.specs import A100
from repro.ir.chain import ComputeChain
from repro.ir.graph import Graph
from repro.search.tuner import MCFuserTuner
from repro.workloads import (
    MODEL_ZOO_FAMILIES,
    WorkloadSpec,
    build_workload,
    get_workload,
    iter_workloads,
    register_workload,
    workload_families,
    workload_names,
)

QUICK = dict(population_size=64, top_n=4, max_rounds=2, min_rounds=1)


class TestRegistry:
    def test_chain_workloads_registered(self):
        names = workload_names(level="chain")
        assert "G1" in names and "S9" in names
        assert isinstance(build_workload("G4"), ComputeChain)

    def test_model_workloads_registered(self):
        names = workload_names(level="model")
        for family in MODEL_ZOO_FAMILIES:
            assert workload_names(level="model", family=family), f"no {family} workload"
        assert isinstance(build_workload(names[0]), Graph)

    def test_lookup_is_case_insensitive(self):
        assert get_workload("g4").name == "G4"
        assert get_workload("FFN-BASE").name == "ffn-base"

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_workload(
                WorkloadSpec("G1", "chain", "gemm_chain", "dup", "test", lambda: None)
            )

    def test_bad_level_rejected(self):
        with pytest.raises(ValueError, match="bad level"):
            WorkloadSpec("x", "kernel", "f", "d", "s", lambda: None)

    def test_families_enumerate(self):
        fams = workload_families(level="model")
        for family in MODEL_ZOO_FAMILIES:
            assert family in fams


def _fused_groups(name):
    graph = build_workload(name)
    partition = partition_graph(graph, A100)
    assert partition.subgraphs, f"{name}: nothing fused"
    return graph, partition


class TestZooFusesEndToEnd:
    """partition -> tune -> codegen -> interpreter == graph execution."""

    @pytest.mark.parametrize(
        "name,expected_kind",
        [
            ("ffn-base", "gemm_chain"),
            ("lora-base", "gemm_chain"),
            ("gqa-32x8", "attention"),
            ("xattn-enc-dec", "attention"),
            ("resbranch", "gemm_chain"),
        ],
    )
    def test_family_end_to_end(self, name, expected_kind):
        graph, partition = _fused_groups(name)
        sg = partition.subgraphs[0]
        assert sg.kind == expected_kind

        env = graph.execute(graph.random_feed(seed=0, scale=0.05))
        report = MCFuserTuner(A100, seed=0, **QUICK).tune(sg.chain)
        module = compile_schedule(report.best_schedule, A100)
        fused = module.run(sg.bind_inputs(env))[sg.chain.output]
        np.testing.assert_allclose(
            sg.extract_output(fused, graph),
            env[sg.output],
            rtol=1e-3,
            atol=1e-4,
            err_msg=f"{name}: fused kernel diverges from graph execution",
        )

    def test_ffn_absorbs_activation_epilogue(self):
        _, partition = _fused_groups("ffn-base")
        chain = partition.subgraphs[0].chain
        assert chain.blocks[0].epilogue == "gelu"
        assert "act" in partition.subgraphs[0].nodes

    def test_lora_folds_scale_and_leaves_base(self):
        graph, partition = _fused_groups("lora-base")
        sg = partition.subgraphs[0]
        assert set(sg.nodes) == {"lora.down", "lora.up", "lora.scaled"}
        assert sg.chain.blocks[-1].scale == pytest.approx(32.0 / 16)
        rest = {n.output for n in partition.rest}
        assert "base" in rest and "merged" in rest

    def test_gqa_folds_query_groups_into_batch(self):
        _, partition = _fused_groups("gqa-32x8")
        chain = partition.subgraphs[0].chain
        assert chain.batch == 8  # kv heads
        assert chain.loops["m"] == 4 * 256  # query group folded into rows
        assert chain.loops["n"] == 256

    def test_cross_attention_has_asymmetric_seq(self):
        _, partition = _fused_groups("xattn-enc-dec")
        chain = partition.subgraphs[0].chain
        assert chain.loops["m"] == 256 and chain.loops["n"] == 1024

    def test_resbranch_fuses_clean_branch_and_diagnoses_fanout(self):
        _, partition = _fused_groups("resbranch")
        assert {sg.output for sg in partition.subgraphs} == {"br1.e"}
        reasons = {r.anchor: r.reason for r in partition.rejected}
        assert reasons["br2.c"] == "multi-consumer"
        assert all(r.detail for r in partition.rejected)

    def test_compile_model_by_registry_name(self):
        result = compile_model("lora-base", A100, "mcfuser+relay", tuner_kwargs=QUICK)
        assert result.mbci_subgraphs == 1
        assert result.detail["rejections"] == {"unsupported-op": 1}

    def test_compile_model_rejects_chain_level_names(self):
        with pytest.raises(ValueError, match="chain-level"):
            compile_model("G4", A100)


class TestZooBeatsLibraryPath:
    # the FFN shapes need a few search rounds before the fused kernel wins,
    # so this test uses the zoo experiment driver's budget, not QUICK
    TUNER = dict(population_size=96, top_n=6, max_rounds=3, min_rounds=2)

    @pytest.mark.parametrize("name", ["ffn-base", "gqa-32x8", "xattn-enc-dec"])
    def test_fusion_speeds_up_model(self, name):
        relay = compile_model(name, A100, "relay")
        fused = compile_model(name, A100, "mcfuser+relay", tuner_kwargs=self.TUNER)
        assert fused.time < relay.time
        assert fused.kernel_count < relay.kernel_count
