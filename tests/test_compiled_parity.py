"""Three-way differential harness for the native compiled C backend.

Every schedule the backends can run must produce the same result — the
scalar interpreter, the vectorized executor, the compiled C kernel, and
``ComputeChain.reference`` agree within fp32 tolerance across random
chains x tiling expressions x tile sizes (non-divisible shapes included).
Schedules only some backends can express must degrade identically: the
``auto`` backend falls back gracefully, explicit ``"compiled"`` raises a
typed error (``LoweringError`` / ``RenderError`` / ``CompileError`` /
``CompilerNotFoundError``), and genuinely invalid schedules raise the
same error everywhere. The whole suite skips with an explicit marker
when the container has no C compiler.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from dag_gen import pattern_graph
from repro.codegen.clang_runtime import (
    CompileError,
    CompilerNotFoundError,
    compiler_available,
    execute_program_compiled,
)
from repro.codegen.interpreter import (
    COMPILED_MIN_FLOPS,
    EXEC_BACKENDS,
    InterpreterError,
    execute_schedule,
    resolve_exec_backend,
)
from repro.codegen.program import LoweringError, lower_schedule
from repro.codegen.render_c import RenderError, render_program, schedule_renderable
from repro.codegen.runtime import compile_schedule
from repro.frontend.partition import partition_graph
from repro.gpu.specs import A100
from repro.ir.chain import attention_chain, gemm3_chain, gemm_chain
from repro.tiling.enumeration import all_tilings
from repro.tiling.expr import TilingExpr
from repro.tiling.schedule import InvalidScheduleError, build_schedule
from repro.utils import rng_for
from repro.workloads.registry import get_workload, workload_names
from test_vectorized_parity import _rank1_softmax_chain, _rank3_softmax_chain

#: fp32 tolerances: backend-vs-backend differ only by contraction
#: reassociation; either-vs-reference adds the fused-vs-unfused gap. The C
#: kernel accumulates serially while NumPy blocks its dot products, so the
#: gap is a shade wider than scalar-vs-vectorized (near-zero outputs of
#: gelu-epilogue 3-GEMM chains show ~1e-5 absolute noise).
BACKEND_RTOL, BACKEND_ATOL = 2e-4, 5e-5
REF_RTOL, REF_ATOL = 2e-4, 5e-5
#: zoo chains contract over up to ~1k elements; the reassociation gap
#: grows with the reduction extent (near-zero outputs of k=1024 chains
#: show ~2e-4 absolute noise against blocked BLAS accumulation).
ZOO_RTOL, ZOO_ATOL = 1e-3, 1e-3

needs_cc = pytest.mark.skipif(
    not compiler_available(), reason="no C compiler (clang/cc/gcc) on PATH"
)

#: every error a backend may raise for a schedule it cannot express.
BACKEND_ERRORS = (InterpreterError, InvalidScheduleError)


def all_backends(schedule, inputs):
    """(scalar, vectorized, compiled) results — or the exception each raised."""
    results = []
    for backend in ("scalar", "vectorized", "compiled"):
        try:
            results.append(execute_schedule(schedule, inputs, backend=backend))
        except BACKEND_ERRORS as exc:
            results.append(exc)
    return results


def assert_three_way(chain, schedule, inputs, ref):
    """Run all three backends; demand run-parity or error-parity.

    Returns True when the schedule actually executed (so sweeps can assert
    they did not silently degrade into error-parity only).
    """
    scalar, vectorized, compiled = all_backends(schedule, inputs)
    if isinstance(scalar, Exception):
        for name, res in (("vectorized", vectorized), ("compiled", compiled)):
            assert isinstance(res, Exception), (
                f"{schedule.describe()}: scalar raised {scalar!r} but "
                f"{name} succeeded"
            )
        return False
    for name, res in (("vectorized", vectorized), ("compiled", compiled)):
        assert not isinstance(res, Exception), (
            f"{schedule.describe()}: {name} raised {res!r} but scalar succeeded"
        )
    out = chain.output
    for name, res in (("vectorized", vectorized), ("compiled", compiled)):
        np.testing.assert_allclose(
            res[out], scalar[out],
            rtol=BACKEND_RTOL, atol=BACKEND_ATOL,
            err_msg=f"{name} diverges from scalar on {schedule.describe()}",
        )
    np.testing.assert_allclose(
        compiled[out], ref,
        rtol=REF_RTOL, atol=REF_ATOL,
        err_msg=f"compiled diverges from reference on {schedule.describe()}",
    )
    return True


# -- random differential sweep --------------------------------------------------


def _random_tiles(rng, chain):
    """Random tile sizes: mostly pow2-ish, sometimes odd, sometimes full."""
    tiles = {}
    for loop, size in chain.loops.items():
        choice = rng.choice(["pow2", "odd", "full"], p=[0.6, 0.2, 0.2])
        if choice == "full":
            tiles[loop] = size
        elif choice == "pow2":
            tiles[loop] = int(rng.choice([8, 16, 32, 48]))
        else:
            tiles[loop] = int(rng.integers(5, max(6, size // 2 + 1)))
    return tiles


def _random_chain(rng, i):
    kind = ["gemm", "attention", "gemm3"][i % 3]

    def dim():
        return int(rng.integers(17, 97))

    batch = int(rng.integers(1, 4))
    epilogue = [None, "relu", "gelu"][int(rng.integers(0, 3))]
    if kind == "gemm":
        return gemm_chain(batch, dim(), dim(), dim(), dim(),
                          name=f"crand-g{i}", epilogue=epilogue)
    if kind == "attention":
        return attention_chain(batch, dim(), dim(), dim(), dim(), name=f"crand-a{i}")
    return gemm3_chain(batch, dim(), dim(), dim(), dim(), dim(),
                       name=f"crand-3g{i}", epilogue=epilogue)


@needs_cc
class TestRandomDifferential:
    """The acceptance sweep: >= 60 seeded random schedules, three-way."""

    CASES = 12
    EXPRS_PER_CASE = 6

    @pytest.mark.parametrize("case", range(CASES))
    def test_random_chain_expr_tiles(self, case):
        """Random chains x sampled expressions x random tile sizes."""
        rng = rng_for("compiled-parity", case)
        chain = _random_chain(rng, case)
        inputs = chain.random_inputs(case)
        ref = chain.reference(inputs)[chain.output]
        exprs = list(all_tilings(chain))
        picks = rng.choice(
            len(exprs), size=min(self.EXPRS_PER_CASE, len(exprs)), replace=False
        )
        ran = 0
        for pick in picks:
            tiles = _random_tiles(rng, chain)
            schedule = build_schedule(chain, exprs[int(pick)], tiles)
            ran += assert_three_way(chain, schedule, inputs, ref)
        # at least one sampled schedule must actually execute, otherwise
        # the sweep silently degrades into error-parity only.
        assert ran >= 1

    def test_exhaustive_small_gemm(self, small_gemm):
        """Every enumerated expression: run-parity and error-parity."""
        tiles = {"m": 16, "n": 16, "k": 16, "h": 16}
        inputs = small_gemm.random_inputs(1)
        ref = small_gemm.reference(inputs)[small_gemm.output]
        ran = sum(
            assert_three_way(small_gemm, build_schedule(small_gemm, expr, tiles),
                             inputs, ref)
            for expr in all_tilings(small_gemm)
        )
        assert ran >= 1


# -- non-divisible shapes --------------------------------------------------------


@needs_cc
class TestRaggedShapes:
    @pytest.mark.parametrize("expr,tiles", [
        ("mhnk", {"m": 32, "n": 32, "k": 32, "h": 32}),
        ("mhnk", {"m": 48, "n": 16, "k": 64, "h": 48}),
        ("mn(k,h)", {"m": 48, "n": 16, "k": 32, "h": 64}),
    ])
    def test_ragged_gemm(self, ragged_gemm, expr, tiles):
        inputs = ragged_gemm.random_inputs(0)
        ref = ragged_gemm.reference(inputs)[ragged_gemm.output]
        schedule = build_schedule(ragged_gemm, TilingExpr.parse(expr), tiles)
        assert assert_three_way(ragged_gemm, schedule, inputs, ref)

    def test_ragged_attention_padded_softmax(self):
        """The online-softmax padding mask under a non-divisible n."""
        chain = attention_chain(2, 100, 84, 24, 40, name="cp-rag-attn")
        inputs = chain.random_inputs(3)
        ref = chain.reference(inputs)[chain.output]
        for expr, tiles in [
            ("mhnk", {"m": 32, "n": 32, "k": 32, "h": 48}),
            ("mn(k,h)", {"m": 48, "n": 16, "k": 32, "h": 48}),
        ]:
            schedule = build_schedule(chain, TilingExpr.parse(expr), tiles)
            assert assert_three_way(chain, schedule, inputs, ref)


@needs_cc
class TestBucketCeilingSchedules:
    """Dynamic-shape bucketing (issue 8): ceiling-tuned schedules replayed
    at shorter in-bucket lengths — non-pow2, prime, just-below-ceiling —
    must run three-way identical (tail tiles masked in all backends)."""

    # prime, just-below-ceiling, non-pow2
    LENGTHS = (97, 127, 96)

    @pytest.mark.parametrize("m", LENGTHS)
    def test_gemm_ceiling_tiles_at_in_bucket_length(self, m):
        from repro.cache.signature import bucket_of
        from repro.search.pruning import bucket_tile_options

        ceiling = bucket_of(m)
        chain = gemm_chain(1, m, 64, 32, 48, name=f"cp-bucket-{m}")
        inputs = chain.random_inputs(m)
        ref = chain.reference(inputs)[chain.output]
        ran = 0
        for tm in bucket_tile_options(ceiling):
            schedule = build_schedule(
                chain, TilingExpr.parse("mhnk"),
                {"m": tm, "n": 32, "k": 32, "h": 48},
            )
            ran += assert_three_way(chain, schedule, inputs, ref)
        assert ran >= 1

    def test_tuned_at_ceiling_rebound_to_prime_length(self):
        """End-to-end: an actual ceiling tune rebound to a prime in-bucket
        length stays three-way identical."""
        from repro.cache import ScheduleCache
        from repro.search.tuner import MCFuserTuner

        tuner = MCFuserTuner(
            A100, dynamic="buckets", cache=ScheduleCache(path=None),
            population_size=64, top_n=4, max_rounds=2, min_rounds=1, seed=0,
        )
        report = tuner.tune(gemm_chain(1, 101, 64, 32, 48, name="cp-ceil-tune"))
        schedule = report.best_schedule
        chain = schedule.chain
        assert chain.loops["m"] == 101  # rebound to the request shape
        inputs = chain.random_inputs(7)
        ref = chain.reference(inputs)[chain.output]
        assert assert_three_way(chain, schedule, inputs, ref)


# -- softmax rank generality and accumulator-reset regressions -------------------


@needs_cc
class TestSemanticEdgeCases:
    """The interpreter's trickiest state machines, replayed in C."""

    def test_rank1_softmax_output(self):
        chain = _rank1_softmax_chain()
        inputs = chain.random_inputs(0)
        ref = chain.reference(inputs)[chain.output]
        schedule = build_schedule(
            chain, TilingExpr.parse("mnk"), {"m": 16, "n": 16, "k": 32}
        )
        out = execute_schedule(schedule, inputs, backend="compiled")[chain.output]
        np.testing.assert_allclose(out, ref, rtol=REF_RTOL, atol=REF_ATOL)

    def test_rank3_softmax_output(self):
        chain = _rank3_softmax_chain()
        inputs = chain.random_inputs(0)
        ref = chain.reference(inputs)[chain.output]
        schedule = build_schedule(
            chain,
            TilingExpr.parse("mgn(k,h)"),
            {"m": 16, "g": 8, "n": 16, "k": 16, "h": 24},
        )
        out = execute_schedule(schedule, inputs, backend="compiled")[chain.output]
        np.testing.assert_allclose(out, ref, rtol=REF_RTOL, atol=REF_ATOL)

    def test_recompute_accumulator_reset(self):
        """A producer recomputed under an unrelated loop must re-zero its
        accumulator on every fresh reduction sweep (npmhk places block C
        inside the unrelated loop h)."""
        chain = gemm3_chain(2, 40, 25, 70, 66, 42, name="c-recompute")
        inputs = chain.random_inputs(0)
        ref = chain.reference(inputs)[chain.output]
        schedule = build_schedule(
            chain,
            TilingExpr.parse("npmhk"),
            {"m": 8, "n": 32, "k": 8, "h": 16, "p": 19},
        )
        out = execute_schedule(schedule, inputs, backend="compiled")[chain.output]
        np.testing.assert_allclose(out, ref, rtol=REF_RTOL, atol=REF_ATOL)

    def test_repeated_compiled_runs_deterministic(self, small_attention):
        schedule = build_schedule(
            small_attention,
            TilingExpr.parse("mn(k,h)"),
            {"m": 32, "n": 32, "k": 32, "h": 32},
        )
        inputs = small_attention.random_inputs(0)
        a = execute_schedule(schedule, inputs, backend="compiled")["O"]
        b = execute_schedule(schedule, inputs, backend="compiled")["O"]
        np.testing.assert_array_equal(a, b)


# -- zoo chains ------------------------------------------------------------------


@needs_cc
class TestZooChains:
    """Every chain-level zoo workload runs compiled and agrees with the
    vectorized executor and the unfused reference."""

    @pytest.mark.parametrize("name", sorted(workload_names(level="chain")))
    def test_zoo_chain_three_way(self, name):
        spec = get_workload(name)
        chain = spec.build()
        if spec.family == "gemm_chain":
            expr = "mhnk"
            tiles = {loop: min(32, size) for loop, size in chain.loops.items()}
        else:
            # FlashAttention-style flat tiling: full k/h extents per block,
            # otherwise the residual h loop leaves two live output tiles.
            expr = "mn(k,h)"
            tiles = {
                "m": min(32, chain.loops["m"]),
                "n": min(32, chain.loops["n"]),
                "k": chain.loops["k"],
                "h": chain.loops["h"],
            }
        schedule = build_schedule(chain, TilingExpr.parse(expr), tiles)
        inputs = chain.random_inputs(0)
        ref = chain.reference(inputs)[chain.output]
        out = chain.output
        compiled = execute_schedule(schedule, inputs, backend="compiled")[out]
        vectorized = execute_schedule(schedule, inputs, backend="vectorized")[out]
        np.testing.assert_allclose(
            compiled, vectorized, rtol=ZOO_RTOL, atol=ZOO_ATOL,
            err_msg=f"compiled vs vectorized divergence on zoo chain {name}",
        )
        np.testing.assert_allclose(
            compiled, ref, rtol=ZOO_RTOL, atol=ZOO_ATOL,
            err_msg=f"compiled vs reference divergence on zoo chain {name}",
        )


# -- random operator DAGs through the partitioner --------------------------------


@needs_cc
class TestRandomDAGChains:
    """Chains the general-DAG partitioner emits (dotted tensor names,
    absorbed epilogues, arbitrary ranks) execute identically compiled."""

    @pytest.mark.parametrize("seed", range(4))
    def test_partitioned_chains_three_way(self, seed):
        graph = pattern_graph(seed)
        if any(s > 1024 for shape in graph.shapes.values() for s in shape):
            pytest.skip("compute-bound-scale pattern; numerics too heavy")
        partition = partition_graph(graph, A100)
        ran = 0
        for sg in partition.subgraphs:
            chain = sg.chain
            tiles = {loop: min(16, size) for loop, size in chain.loops.items()}
            inputs = chain.random_inputs(seed)
            ref = chain.reference(inputs)[chain.output]
            for expr in all_tilings(chain)[:8]:
                schedule = build_schedule(chain, expr, tiles)
                if assert_three_way(chain, schedule, inputs, ref):
                    ran += 1
                    break
        assert ran >= 1, "no partitioned chain executed on any sampled tiling"


# -- typed-error property --------------------------------------------------------


dims = st.sampled_from([16, 32, 48])


class TestTypedErrors:
    """Anything lowering accepts either renders+compiles or refuses with a
    typed RenderError — never a stray exception, never a wrong answer."""

    @needs_cc
    @settings(max_examples=15, deadline=None)
    @given(idx=st.integers(0, 25), tm=dims, tn=dims)
    def test_lowerable_compiles_or_typed_error(self, idx, tm, tn):
        chain = gemm_chain(1, 64, 48, 32, 48, name="cprop")
        expr = all_tilings(chain)[idx]
        tiles = {"m": tm, "n": tn, "k": 16, "h": 16}
        schedule = build_schedule(chain, expr, tiles)
        try:
            program = lower_schedule(schedule)
        except (LoweringError, InvalidScheduleError):
            return  # not lowerable: out of scope for the renderer
        try:
            kernel = render_program(program)
        except RenderError:
            return  # a typed refusal is an acceptable outcome
        assert kernel.source_hash and kernel.entry == "mcfuser_kernel"
        inputs = chain.random_inputs(0)
        try:
            scalar = execute_schedule(schedule, inputs, backend="scalar")
        except BACKEND_ERRORS:
            with pytest.raises(BACKEND_ERRORS):
                execute_program_compiled(program, inputs)
            return
        out = execute_program_compiled(program, inputs)[chain.output]
        np.testing.assert_allclose(
            out, scalar[chain.output], rtol=BACKEND_RTOL, atol=BACKEND_ATOL
        )

    def test_render_rejects_schedule_lowering_rejects(self):
        """schedule_renderable is False wherever lowering refuses."""
        schedule = _unlowerable_schedule()
        assert not schedule_renderable(schedule)
        with pytest.raises((LoweringError, RenderError)):
            render_program(lower_schedule(schedule))


# -- backend selection and fallback ----------------------------------------------


def _unlowerable_schedule():
    """A schedule every lowered backend refuses: a residual h loop keeps
    two live tiles of the attention output, which the single-copy buffer
    model cannot express (the scalar interpreter still runs it)."""
    chain = attention_chain(1, 64, 64, 32, 64, name="c-unlower")
    return build_schedule(
        chain, TilingExpr.parse("mn(k,h)"), {"m": 32, "n": 32, "k": 32, "h": 32}
    )


class TestBackendSelection:
    def test_backend_names(self):
        assert EXEC_BACKENDS == ("auto", "compiled", "vectorized", "scalar")

    def _small_schedule(self, small_gemm):
        return build_schedule(
            small_gemm, TilingExpr.parse("mhnk"), {"m": 32, "n": 16, "k": 16, "h": 16}
        )

    @needs_cc
    def test_pinned_compiled_resolves(self, small_gemm):
        schedule = self._small_schedule(small_gemm)
        assert resolve_exec_backend(schedule, "compiled") == "compiled"

    def test_auto_threshold_keeps_small_chains_vectorized(self, small_gemm):
        """Small chains stay on the vectorized tier: a C-compiler launch
        costs more than the whole execution below COMPILED_MIN_FLOPS."""
        schedule = self._small_schedule(small_gemm)
        assert schedule.total_flops() < COMPILED_MIN_FLOPS
        assert resolve_exec_backend(schedule, "auto") == "vectorized"

    @needs_cc
    def test_auto_prefers_compiled_above_threshold(self, monkeypatch, small_gemm):
        monkeypatch.setenv("REPRO_COMPILED_MIN_FLOPS", "0")
        schedule = self._small_schedule(small_gemm)
        assert resolve_exec_backend(schedule, "auto") == "compiled"
        inputs = small_gemm.random_inputs(0)
        auto = execute_schedule(schedule, inputs)[small_gemm.output]
        scalar = execute_schedule(schedule, inputs, backend="scalar")[small_gemm.output]
        np.testing.assert_allclose(auto, scalar, rtol=BACKEND_RTOL, atol=BACKEND_ATOL)

    @needs_cc
    def test_auto_threshold_env_override_disables(self, monkeypatch, small_gemm):
        monkeypatch.setenv("REPRO_COMPILED_MIN_FLOPS", "1e30")
        schedule = self._small_schedule(small_gemm)
        assert resolve_exec_backend(schedule, "auto") == "vectorized"

    def test_missing_compiler_typed_error_and_auto_fallback(
        self, monkeypatch, small_gemm
    ):
        """$REPRO_CC pointing nowhere: pinned "compiled" raises the typed
        CompilerNotFoundError; "auto" silently stays on vectorized."""
        monkeypatch.setenv("REPRO_CC", "/nonexistent/mcfuser-cc")
        schedule = build_schedule(
            small_gemm, TilingExpr.parse("mhnk"), {"m": 16, "n": 16, "k": 32, "h": 48}
        )
        with pytest.raises(CompilerNotFoundError):
            resolve_exec_backend(schedule, "compiled")
        assert resolve_exec_backend(schedule, "auto") == "vectorized"
        monkeypatch.setenv("REPRO_COMPILED_MIN_FLOPS", "0")
        inputs = small_gemm.random_inputs(0)
        out = execute_schedule(schedule, inputs)[small_gemm.output]
        scalar = execute_schedule(schedule, inputs, backend="scalar")[small_gemm.output]
        np.testing.assert_allclose(out, scalar, rtol=BACKEND_RTOL, atol=BACKEND_ATOL)

    def test_compiler_not_found_is_typed(self):
        assert issubclass(CompilerNotFoundError, CompileError)
        assert issubclass(CompileError, RenderError)
        assert issubclass(RenderError, InterpreterError)

    def test_pinned_compiled_on_unlowerable_raises(self):
        schedule = _unlowerable_schedule()
        with pytest.raises(LoweringError):
            execute_schedule(
                schedule, schedule.chain.random_inputs(0), backend="compiled"
            )

    @needs_cc
    def test_operator_module_compiled_backend(self, small_gemm):
        module = compile_schedule(
            self._small_schedule(small_gemm), A100, exec_backend="compiled"
        )
        assert module.resolved_exec_backend == "compiled"
        inputs = small_gemm.random_inputs(0)
        out = module.run(inputs)[small_gemm.output]
        ref = small_gemm.reference(inputs)[small_gemm.output]
        np.testing.assert_allclose(out, ref, rtol=REF_RTOL, atol=REF_ATOL)
