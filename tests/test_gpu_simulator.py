"""Unit tests for the GPU simulator (the reproduction's 'hardware')."""

import pytest

from repro.gpu.kernel import KernelLaunch
from repro.gpu.occupancy import SharedMemoryExceeded
from repro.gpu.simulator import GPUSimulator, compute_efficiency, memory_efficiency
from repro.gpu.specs import A100, GENERIC


def kernel(**kw):
    base = dict(
        name="k",
        grid=1080,
        flops=1e10,
        dram_read_bytes=1e6,
        dram_write_bytes=1e5,
        shared_mem_bytes=8192,
        tile_m=128,
        tile_n=128,
        tile_k=64,
        inner_contig_bytes=256,
    )
    base.update(kw)
    return KernelLaunch(**base)


class TestEfficiencyCurves:
    def test_compute_eff_monotone_in_tiles(self):
        small = compute_efficiency(16, 16, 16, "triton")
        big = compute_efficiency(128, 128, 64, "triton")
        assert big > small

    def test_compute_eff_register_pressure(self):
        ok = compute_efficiency(128, 128, 64, "triton")
        spilled = compute_efficiency(256, 256, 64, "triton")
        assert spilled < ok

    def test_compute_eff_codegen_ordering(self):
        assert compute_efficiency(64, 64, 32, "cublas") > compute_efficiency(64, 64, 32, "ansor")

    def test_compute_eff_bounded(self):
        assert 0 < compute_efficiency(1024, 16, 16, "cublas") < 1

    def test_memory_eff_monotone_in_contiguity(self):
        assert memory_efficiency(256) > memory_efficiency(32)

    def test_memory_eff_codegen_mild(self):
        # Memory penalty of weak codegen is smaller than its compute penalty.
        ratio_mem = memory_efficiency(256, "ansor") / memory_efficiency(256, "cublas")
        ratio_cmp = compute_efficiency(64, 64, 32, "ansor") / compute_efficiency(64, 64, 32, "cublas")
        assert ratio_cmp < ratio_mem < 1.0


class TestTiming:
    def test_memory_bound_kernel(self, sim):
        k = kernel(flops=1e6, dram_read_bytes=1e9)
        timing = sim.time_kernel(k)
        assert timing.bound == "memory"
        assert timing.total > 1e9 / A100.mem_bandwidth  # can't beat the roofline

    def test_compute_bound_kernel(self, sim):
        k = kernel(flops=1e12, dram_read_bytes=1e5)
        timing = sim.time_kernel(k)
        assert timing.bound == "compute"
        assert timing.total > 1e12 / A100.peak_flops

    def test_more_flops_cost_more(self, sim):
        t1 = sim.run(kernel(flops=1e10))
        t2 = sim.run(kernel(flops=4e10))
        assert t2 > t1

    def test_more_bytes_cost_more(self, sim):
        t1 = sim.run(kernel(flops=0.0, dram_read_bytes=1e8))
        t2 = sim.run(kernel(flops=0.0, dram_read_bytes=4e8))
        assert t2 > t1

    def test_small_grid_compute_penalty(self, sim):
        full = sim.run(kernel(flops=1e11, dram_read_bytes=1e4, grid=108))
        starved = sim.run(kernel(flops=1e11, dram_read_bytes=1e4, grid=12))
        assert starved > 5 * full

    def test_small_grid_memory_penalty_milder(self, sim):
        full = sim.run(kernel(flops=0.0, dram_read_bytes=1e9, grid=108))
        starved = sim.run(kernel(flops=0.0, dram_read_bytes=1e9, grid=27))
        # quantization 4x, memory relief /4 -> at most ~1 extra wave latency
        assert starved < 1.5 * full

    def test_launch_overhead_floor(self, sim):
        t = sim.run(kernel(flops=1.0, dram_read_bytes=1.0, dram_write_bytes=0.0))
        assert t >= 0.9 * A100.kernel_launch_overhead

    def test_shared_memory_exceeded(self, sim):
        with pytest.raises(SharedMemoryExceeded):
            sim.run(kernel(shared_mem_bytes=A100.shared_mem_per_block + 1))

    def test_efficiency_derate_slows(self, sim):
        fast = sim.run(kernel())
        slow = sim.run(kernel(efficiency=0.5))
        assert slow > 1.5 * fast


class TestL2Relief:
    def test_rereads_discounted_when_ws_fits(self, sim):
        no_info = kernel(flops=0.0, dram_read_bytes=1e8, dram_write_bytes=0.0)
        with_l2 = kernel(
            flops=0.0,
            dram_read_bytes=1e8,
            dram_write_bytes=0.0,
            dram_compulsory_read_bytes=1e6,
        )
        assert sim.run(with_l2) < 0.3 * sim.run(no_info)

    def test_no_relief_when_ws_exceeds_l2(self, sim):
        big = kernel(
            flops=0.0,
            dram_read_bytes=4e9,
            dram_write_bytes=0.0,
            dram_compulsory_read_bytes=3.9e9,
        )
        plain = kernel(flops=0.0, dram_read_bytes=4e9, dram_write_bytes=0.0)
        assert sim.run(big) > 0.9 * sim.run(plain)

    def test_compulsory_clamped_to_reads(self, sim):
        k = kernel(dram_read_bytes=1e6, dram_compulsory_read_bytes=1e9)
        assert sim.run(k) > 0  # no crash, clamped internally


class TestDeterminismAndJitter:
    def test_same_seed_same_time(self):
        a = GPUSimulator(A100, seed=7).run(kernel())
        b = GPUSimulator(A100, seed=7).run(kernel())
        assert a == b

    def test_different_seed_different_time(self):
        a = GPUSimulator(A100, seed=1).run(kernel())
        b = GPUSimulator(A100, seed=2).run(kernel())
        assert a != b

    def test_jitter_bounded(self):
        clean = GPUSimulator(A100, jitter=False).run(kernel())
        for seed in range(20):
            noisy = GPUSimulator(A100, seed=seed).run(kernel())
            assert abs(noisy - clean) / clean < 0.025

    def test_jitter_disabled_exact(self):
        a = GPUSimulator(A100, jitter=False, seed=1).run(kernel())
        b = GPUSimulator(A100, jitter=False, seed=2).run(kernel())
        assert a == b


class TestSequences:
    def test_sequence_sums(self, sim):
        ks = [kernel(name=f"k{i}") for i in range(3)]
        assert sim.run_sequence(ks) == pytest.approx(sum(sim.run(k) for k in ks))

    def test_achieved_tflops(self, sim):
        k = kernel(flops=1e12, dram_read_bytes=1e5, grid=10800)
        tf = sim.achieved_tflops(k)
        assert 0 < tf < A100.peak_flops / 1e12
