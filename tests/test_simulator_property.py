"""Property-based invariants of the GPU simulator (the 'hardware')."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.kernel import KernelLaunch
from repro.gpu.simulator import GPUSimulator
from repro.gpu.specs import A100, RTX3080

flops_s = st.floats(1e6, 1e13)
bytes_s = st.floats(1e3, 1e10)
grid_s = st.integers(1, 100_000)
tile_s = st.sampled_from([16, 32, 64, 128])


def kernel(flops, rbytes, grid, tm=64, tn=64, tk=32, shm=8192, eff=1.0):
    return KernelLaunch(
        name="p",
        grid=grid,
        flops=flops,
        dram_read_bytes=rbytes,
        dram_write_bytes=0.0,
        shared_mem_bytes=shm,
        tile_m=tm,
        tile_n=tn,
        tile_k=tk,
        efficiency=eff,
    )


@settings(max_examples=60, deadline=None)
@given(flops=flops_s, rbytes=bytes_s, grid=grid_s)
def test_roofline_lower_bounds(flops, rbytes, grid):
    """No kernel beats the pure roofline on either resource."""
    sim = GPUSimulator(A100, jitter=False)
    t = sim.run(kernel(flops, rbytes, grid))
    assert t >= flops / A100.peak_flops
    assert t >= rbytes / A100.mem_bandwidth


@settings(max_examples=40, deadline=None)
@given(flops=flops_s, rbytes=bytes_s, grid=grid_s)
def test_monotone_in_work(flops, rbytes, grid):
    sim = GPUSimulator(A100, jitter=False)
    base = sim.run(kernel(flops, rbytes, grid))
    assert sim.run(kernel(flops * 2, rbytes, grid)) >= base
    assert sim.run(kernel(flops, rbytes * 2, grid)) >= base


@settings(max_examples=40, deadline=None)
@given(flops=flops_s, rbytes=bytes_s, grid=grid_s, eff=st.floats(0.1, 1.0))
def test_derate_slows_proportionally(flops, rbytes, grid, eff):
    sim = GPUSimulator(A100, jitter=False)
    fast = sim.run(kernel(flops, rbytes, grid, eff=1.0))
    slow = sim.run(kernel(flops, rbytes, grid, eff=eff))
    assert slow >= fast * 0.999


@settings(max_examples=40, deadline=None)
@given(flops=flops_s, rbytes=bytes_s, grid=grid_s)
def test_slower_gpu_never_faster(flops, rbytes, grid):
    """The 3080 (fewer SMs, less bandwidth, lower peak) never beats the
    A100 on the same kernel."""
    k = kernel(flops, rbytes, grid)
    t_a100 = GPUSimulator(A100, jitter=False).run(k)
    t_3080 = GPUSimulator(RTX3080, jitter=False).run(k)
    assert t_3080 >= t_a100 * 0.98


@settings(max_examples=40, deadline=None)
@given(flops=flops_s, rbytes=bytes_s, grid=grid_s, seed=st.integers(0, 1000))
def test_jitter_small_and_deterministic(flops, rbytes, grid, seed):
    k = kernel(flops, rbytes, grid)
    clean = GPUSimulator(A100, jitter=False).run(k)
    noisy = GPUSimulator(A100, seed=seed).run(k)
    assert abs(noisy - clean) / clean < 0.025
    assert noisy == GPUSimulator(A100, seed=seed).run(k)
