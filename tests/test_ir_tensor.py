"""Unit tests for repro.ir.tensor."""

import numpy as np
import pytest

from repro.ir.tensor import DTYPE_BYTES, TensorSpec


class TestTensorSpec:
    def test_basic(self):
        t = TensorSpec("x", (4, 8))
        assert t.ndim == 2
        assert t.num_elements == 32
        assert t.dtype_bytes == 2
        assert t.nbytes == 64

    def test_fp32(self):
        t = TensorSpec("x", (4,), dtype="float32")
        assert t.nbytes == 16

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            TensorSpec("", (4,))

    def test_rejects_zero_dim(self):
        with pytest.raises(ValueError):
            TensorSpec("x", (4, 0))

    def test_rejects_unknown_dtype(self):
        with pytest.raises(ValueError):
            TensorSpec("x", (4,), dtype="int8")

    def test_numpy_dtype(self):
        assert TensorSpec("x", (2,), dtype="float16").numpy_dtype() == np.float16

    def test_zeros_compute_precision(self):
        z = TensorSpec("x", (2, 3)).zeros()
        assert z.dtype == np.float32
        assert z.shape == (2, 3)

    def test_dtype_table(self):
        assert DTYPE_BYTES == {"float16": 2, "float32": 4}
