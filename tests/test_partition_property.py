"""Property-based tests for the general-DAG partitioner.

A seeded random-DAG generator (``dag_gen.random_graph``) drives invariant
checks over arbitrary operator graphs:

* every node lands in exactly one fusion group or the remainder;
* the contracted graph (groups as super-nodes) is acyclic;
* every emitted ComputeChain is topologically valid and numerically
  equivalent to the graph ops it absorbs;
* group shared-memory floors respect the GPU bound;
* every rejection carries a machine-readable reason and a detail.

A fixed seed sweep always runs; when Hypothesis is installed the same
invariants are additionally explored with its shrinking search.
"""

import numpy as np
import pytest

from dag_gen import random_graph
from repro.frontend.grouping import classify_node
from repro.frontend.partition import (
    MAX_GROUP_BLOCKS,
    MAX_GROUP_LOOPS,
    min_footprint_fits,
    partition_graph,
)
from repro.gpu.specs import A100, GENERIC
from repro.ir.graph import Graph

KNOWN_REASONS = {
    "multi-consumer",
    "unsupported-op",
    "fusable-context",
    "rank-mismatch",
    "batch-mismatch",
    "loop-budget",
    "block-budget",
    "footprint",
    "compute-bound",
    "single-block",
    "dangling-softmax",
    "softmax-position",
    "softmax-axis",
    "graph-output",
    "claimed",
    "tensor-reuse",
    "layout",
    "cycle",
    "dataflow-end",
}


def check_partition_invariants(graph: Graph, gpu=A100) -> None:
    """Assert every partitioner invariant on one graph."""
    partition = partition_graph(graph, gpu)
    all_outputs = [n.output for n in graph.nodes]

    # 1. exact coverage: every node in exactly one group or the remainder
    claimed: list[str] = []
    for sg in partition.subgraphs:
        claimed.extend(sg.nodes)
    assert len(claimed) == len(set(claimed)), "groups overlap"
    rest = [n.output for n in partition.rest]
    assert sorted(claimed + rest) == sorted(all_outputs), "coverage broken"

    # 2. contracted graph is acyclic: Kahn topo-sort over super-nodes
    component: dict[str, object] = {}
    for i, sg in enumerate(partition.subgraphs):
        for t in sg.nodes:
            component[t] = f"group{i}"
    for t in rest:
        component[t] = t
    edges: dict[object, set[object]] = {c: set() for c in set(component.values())}
    indeg: dict[object, int] = {c: 0 for c in edges}
    for node in graph.nodes:
        dst = component[node.output]
        for t in node.inputs:
            src = component.get(t)
            if src is None or src == dst:
                continue
            if dst not in edges[src]:
                edges[src].add(dst)
                indeg[dst] += 1
    ready = [c for c, d in indeg.items() if d == 0]
    seen = 0
    while ready:
        c = ready.pop()
        seen += 1
        for nxt in edges[c]:
            indeg[nxt] -= 1
            if indeg[nxt] == 0:
                ready.append(nxt)
    assert seen == len(edges), "contracted graph has a cycle"

    # 3. chains are topologically valid and numerically faithful
    env = graph.execute(graph.random_feed(seed=0, scale=0.05))
    for sg in partition.subgraphs:
        chain = sg.chain
        produced: set[str] = set()
        for block in chain.blocks:
            for t in block.inputs:
                if chain.tensors[t].role == "intermediate":
                    assert t in produced, f"{chain.name}: {t} consumed before produced"
            produced.add(block.output)
        assert chain.tensors[chain.output].role == "output"
        assert len(sg.inputs) == len(chain.input_names())
        ref = chain.reference(sg.bind_inputs(env))[chain.output]
        np.testing.assert_allclose(
            sg.extract_output(ref, graph),
            env[sg.output],
            rtol=1e-4,
            atol=1e-5,
            err_msg=f"{chain.name} diverges from the graph ops it absorbed",
        )

        # 4. resource budgets
        assert len(chain.blocks) <= MAX_GROUP_BLOCKS
        assert len(chain.loops) <= MAX_GROUP_LOOPS
        assert min_footprint_fits(chain, gpu), f"{chain.name} violates the shm bound"

    # 5. every rejection is diagnosed
    contraction_outputs = {
        n.output for n in graph.nodes if classify_node(graph, n, gpu).kind == "anchor"
    }
    for rej in partition.rejected:
        assert rej.reason in KNOWN_REASONS, f"unknown reason {rej.reason!r}"
        assert rej.detail, "rejection without a detail"
        assert rej.anchor in contraction_outputs, "rejection anchored off-contraction"


class TestRandomDagInvariants:
    @pytest.mark.parametrize("seed", range(40))
    def test_invariants_hold(self, seed):
        check_partition_invariants(random_graph(seed))

    def test_generator_is_deterministic(self):
        a, b = random_graph(7), random_graph(7)
        assert [repr(n.op) for n in a.nodes] == [repr(n.op) for n in b.nodes]
        assert a.shapes == b.shapes

    def test_generator_produces_fusable_and_rejected(self):
        """Across the sweep the generator must exercise both outcomes."""
        fused = rejected = 0
        for seed in range(40):
            p = partition_graph(random_graph(seed), A100)
            fused += len(p.subgraphs)
            rejected += len(p.rejected)
        assert fused > 0 and rejected > 0

    def test_small_gpu_tightens_footprint(self):
        """Groups legal on the A100 can be footprint-rejected on a tiny GPU;
        invariants must hold either way."""
        tiny = GENERIC.with_overrides(
            shared_mem_per_block=2 * 1024, shared_mem_per_sm=2 * 1024
        )
        for seed in range(10):
            check_partition_invariants(random_graph(seed), gpu=tiny)


hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


class TestHypothesisInvariants:
    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100_000))
    def test_invariants_hold(self, seed):
        check_partition_invariants(random_graph(seed))

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100_000), max_ops=st.integers(3, 24))
    def test_invariants_hold_varying_size(self, seed, max_ops):
        check_partition_invariants(random_graph(seed, max_ops=max_ops))
