"""Telemetry registry: instrument semantics, snapshots, thread safety."""

import json
import threading

import pytest

from repro.serving.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    load_snapshot,
    save_snapshot,
)


class TestCounter:
    def test_increments(self):
        c = Counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_decrease(self):
        c = Counter("c")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)

    def test_concurrent_increments_are_lost_update_free(self):
        c = Counter("c")

        def hammer():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("g")
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value == 13


class TestHistogram:
    def test_streaming_stats(self):
        h = Histogram("h")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == 10.0
        assert h.min == 1.0 and h.max == 4.0
        assert h.mean == 2.5

    def test_percentiles_interpolate(self):
        h = Histogram("h")
        for v in range(1, 101):
            h.observe(float(v))
        assert h.percentile(50) == pytest.approx(50.5)
        assert h.percentile(95) == pytest.approx(95.05)
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0

    def test_percentile_bounds(self):
        h = Histogram("h")
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_empty_percentile_is_nan(self):
        import math

        assert math.isnan(Histogram("h").percentile(50))

    def test_window_is_bounded(self):
        h = Histogram("h")
        for v in range(Histogram.WINDOW + 500):
            h.observe(float(v))
        assert h.count == Histogram.WINDOW + 500
        # the window holds only the most recent observations
        assert h.percentile(0) == 500.0

    def test_snapshot_shape(self):
        h = Histogram("h")
        h.observe(2.0)
        snap = h.snapshot()
        assert snap["count"] == 1
        assert snap["p50"] == 2.0 and snap["p95"] == 2.0
        empty = Histogram("e").snapshot()
        assert empty["count"] == 0 and empty["p50"] is None


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_kind_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError, match="is a counter"):
            reg.gauge("a")

    def test_value_accessor(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(3)
        reg.gauge("g").set(7)
        assert reg.value("a") == 3
        assert reg.value("g") == 7
        reg.histogram("h").observe(1.0)
        with pytest.raises(TypeError):
            reg.value("h")
        with pytest.raises(KeyError):
            reg.value("missing")

    def test_snapshot_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.counter("serve.requests").inc(2)
        reg.gauge("serve.queue.depth").set(1)
        reg.histogram("serve.latency.warm").observe(0.001)
        snap = reg.snapshot()
        doc = json.loads(json.dumps(snap))
        assert doc["counters"]["serve.requests"] == 2
        assert doc["gauges"]["serve.queue.depth"] == 1
        assert doc["histograms"]["serve.latency.warm"]["count"] == 1
        assert json.loads(reg.to_json())["counters"]["serve.requests"] == 2

    def test_snapshots_are_monotonic_under_concurrent_writers(self):
        reg = MetricsRegistry()
        stop = threading.Event()
        seen: list[dict] = []

        def writer():
            while not stop.is_set():
                reg.counter("serve.requests").inc()
                reg.counter("serve.tunes").inc(2)

        def sampler():
            while not stop.is_set():
                seen.append(reg.snapshot()["counters"])

        threads = [threading.Thread(target=writer) for _ in range(4)]
        threads.append(threading.Thread(target=sampler))
        for t in threads:
            t.start()
        import time

        time.sleep(0.2)
        stop.set()
        for t in threads:
            t.join()
        seen.append(reg.snapshot()["counters"])
        assert len(seen) >= 2
        for before, after in zip(seen, seen[1:]):
            for name, value in before.items():
                assert after.get(name, 0) >= value


class TestSnapshotPersistence:
    def test_round_trip(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("serve.requests").inc(5)
        path = tmp_path / "metrics" / "serve_metrics.json"
        written = save_snapshot(reg.snapshot(), path)
        loaded = load_snapshot(written)
        assert loaded["counters"]["serve.requests"] == 5

    def test_load_missing_returns_none(self, tmp_path):
        assert load_snapshot(tmp_path / "absent.json") is None

    def test_load_corrupt_returns_none(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        assert load_snapshot(path) is None
        path.write_text("[1, 2]")  # valid JSON, wrong shape
        assert load_snapshot(path) is None


class TestLabeled:
    def test_joins_parts_with_dots(self):
        from repro.serving.telemetry import labeled

        assert labeled("exec.fallback", "compiled", "no-compiler") == (
            "exec.fallback.compiled.no-compiler"
        )

    def test_sanitizes_dotted_parts(self):
        from repro.serving.telemetry import labeled

        # a part containing dots must not fabricate extra name segments
        assert labeled("serve.hits", "a.b") == "serve.hits.a-b"

    def test_skips_empty_parts(self):
        from repro.serving.telemetry import labeled

        assert labeled("base", "", "x") == "base.x"
        assert labeled("base") == "base"

    def test_coerces_non_strings(self):
        from repro.serving.telemetry import labeled

        assert labeled("bucket", 128) == "bucket.128"


class TestSharedPercentiles:
    def test_summary_matches_histogram_snapshot(self):
        from repro.serving.telemetry import PERCENTILES, percentile_summary

        values = [float(i) for i in range(1, 101)]
        summary = percentile_summary(values)
        h = Histogram("h")
        for v in values:
            h.observe(v)
        snap = h.snapshot()
        for key, _ in PERCENTILES:
            assert snap[key] == summary[key]

    def test_empty_summary_is_none(self):
        # None (not NaN) so snapshots stay plain-JSON serializable; the
        # Prometheus exporter renders missing quantiles as NaN samples.
        from repro.serving.telemetry import PERCENTILES, percentile_summary

        summary = percentile_summary([])
        for key, _ in PERCENTILES:
            assert summary[key] is None

    def test_window_parameter_documented_in_snapshot(self):
        h = Histogram("h", window=8)
        for v in range(100):
            h.observe(float(v))
        snap = h.snapshot()
        assert snap["window"] == 8
        assert snap["count"] == 100  # count/sum are exact, not windowed
        assert snap["p50"] >= 92.0  # percentiles come from the recent window

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            Histogram("h", window=0)

    def test_registry_histogram_window_passthrough(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", window=16)
        assert h.snapshot()["window"] == 16


class TestAtomicSnapshot:
    def test_accounting_identity_holds_in_every_snapshot(self):
        """Regression: snapshots must be cut under one lock so cross-metric
        identities hold. Writers bump ``serve.requests`` *before* an outcome
        counter; a torn snapshot could read the outcome increment without
        the request increment and show outcomes > requests."""
        reg = MetricsRegistry()
        outcomes = ("serve.hits.hot", "serve.coalesced", "serve.tunes", "serve.shed")
        stop = threading.Event()
        violations: list[dict] = []

        def writer(outcome):
            while not stop.is_set():
                reg.counter("serve.requests").inc()
                reg.counter(outcome).inc()

        def sampler():
            while not stop.is_set():
                counters = reg.snapshot()["counters"]
                served = sum(counters.get(o, 0) for o in outcomes)
                if served > counters.get("serve.requests", 0):
                    violations.append(counters)

        threads = [threading.Thread(target=writer, args=(o,)) for o in outcomes]
        threads += [threading.Thread(target=sampler) for _ in range(2)]
        for t in threads:
            t.start()
        import time

        time.sleep(0.3)
        stop.set()
        for t in threads:
            t.join()
        assert not violations, violations[0]

    def test_snapshot_under_concurrent_histogram_writers(self):
        reg = MetricsRegistry()
        stop = threading.Event()
        errors: list[Exception] = []

        def writer():
            i = 0
            while not stop.is_set():
                reg.histogram("h").observe(float(i % 50))
                i += 1

        def sampler():
            while not stop.is_set():
                try:
                    snap = reg.snapshot()["histograms"]["h"]
                    assert snap["count"] >= 0
                    json.dumps(snap)
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        threads.append(threading.Thread(target=sampler))
        for t in threads:
            t.start()
        import time

        time.sleep(0.2)
        stop.set()
        for t in threads:
            t.join()
        assert not errors
