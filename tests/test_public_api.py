"""The documented public API (README quickstart) must keep working."""

import numpy as np

import repro


class TestTopLevelExports:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version(self):
        assert repro.__version__ == "1.0.0"


class TestReadmeQuickstart:
    def test_quickstart_flow(self):
        chain = repro.attention_chain(heads=4, m=128, n=128, k=32, h=32)
        assert chain.is_mbci(repro.A100)

        tuner = repro.MCFuserTuner(
            repro.A100, population_size=64, top_n=4, max_rounds=2, min_rounds=1
        )
        report = tuner.tune(chain)
        assert report.best_time > 0
        assert "T" in report.best_candidate.describe()
        assert "for" in report.best_schedule.pretty()

        module = repro.compile_schedule(report.best_schedule, repro.A100)
        inputs = chain.random_inputs(seed=0)
        out = module.run(inputs)["O"]
        ref = chain.reference(inputs)["O"]
        np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-5)
        assert ".entry" in module.ptx

    def test_workload_lookups(self):
        assert repro.gemm_workload("G7").loops["m"] == 512
        assert repro.attention_workload("S3").batch == 16

    def test_e2e_entry_points(self):
        graph = repro.bert_encoder("Bert-Small", 64)
        partition = repro.partition_graph(graph, repro.A100)
        assert len(partition.subgraphs) == 4
