"""Tests for the unified SessionConfig layer: validation, serialization
round-trips, env overrides, flat-name routing, legacy-kwarg shims, and the
cache-key stability guarantee (config-derived variant keys must be
bit-identical to the historical strings)."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.signature import variant_key as legacy_variant_key
from repro.config import (
    FLAT_FIELDS,
    TUNER_KNOBS,
    CacheConfig,
    ExecConfig,
    SearchConfig,
    ServeConfig,
    SessionConfig,
    apply_env,
    build_legacy_config,
    describe_fields,
    env_var_for,
    field_paths,
    search_overrides,
)
from repro.search.engine.strategy import strategy_names


class TestValidation:
    def test_defaults_are_valid(self):
        cfg = SessionConfig()
        assert cfg.gpu == "a100"
        assert cfg.search.population_size == 512
        assert cfg.exec.backend == "auto"
        assert cfg.cache.enabled is True
        assert cfg.serve.workers == 4
        assert cfg.obs.trace is False

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(variant="fuserx"),
            dict(strategy="quantum"),
            dict(population_size=0),
            dict(top_n=0),
            dict(epsilon=-0.1),
            dict(max_rounds=0),
            dict(min_rounds=-1),
            dict(workers=0),
            dict(measure_topk=-1),
        ],
    )
    def test_search_rejects_at_construction(self, kwargs):
        with pytest.raises(ValueError):
            SearchConfig(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(backend="cuda"),
            dict(verify="maybe"),
            dict(dynamic="ragged"),
            dict(dynamic_loops=("m", "")),
        ],
    )
    def test_exec_rejects_at_construction(self, kwargs):
        with pytest.raises(ValueError):
            ExecConfig(**kwargs)

    def test_cache_rejects_empty_dir(self):
        with pytest.raises(ValueError):
            CacheConfig(dir="")

    @pytest.mark.parametrize("kwargs", [dict(workers=0), dict(queue_limit=0)])
    def test_serve_rejects_at_construction(self, kwargs):
        with pytest.raises(ValueError):
            ServeConfig(**kwargs)

    def test_empty_gpu_rejected(self):
        with pytest.raises(ValueError):
            SessionConfig(gpu="")

    def test_wrong_section_type_rejected(self):
        with pytest.raises(ValueError, match="section 'search'"):
            SessionConfig(search="fast")

    def test_section_dict_coerces(self):
        cfg = SessionConfig(search={"seed": 7})
        assert cfg.search.seed == 7
        assert cfg.search.population_size == 512

    def test_error_names_valid_choices(self):
        with pytest.raises(ValueError, match="pick from"):
            SearchConfig(variant="fuserx")


class TestFlatRouting:
    def test_make_routes_flat_names(self):
        cfg = SessionConfig.make(
            seed=3, exec_backend="vectorized", serve_workers=2, trace=True
        )
        assert cfg.search.seed == 3
        assert cfg.exec.backend == "vectorized"
        assert cfg.serve.workers == 2
        assert cfg.obs.trace is True

    def test_evolve_unknown_name_lists_valid_set(self):
        with pytest.raises(ValueError, match="valid flat names"):
            SessionConfig().evolve(populationsize=4)

    def test_evolve_skips_none(self):
        cfg = SessionConfig.make(seed=5)
        assert cfg.evolve(seed=None).search.seed == 5

    def test_evolve_cache_dir_none_is_real(self, tmp_path):
        cfg = SessionConfig.make(cache_dir=str(tmp_path))
        assert cfg.cache.dir == str(tmp_path)
        assert cfg.evolve(cache_dir=None).cache.dir is None

    def test_evolve_batches_cross_field_validation(self):
        # max_rounds=2 < default min_rounds=5 must be applied together.
        cfg = SessionConfig.make(max_rounds=2, min_rounds=1)
        assert (cfg.search.max_rounds, cfg.search.min_rounds) == (2, 1)

    def test_update_and_get_dotted_paths(self):
        cfg = SessionConfig().update("search.seed", 9)
        assert cfg.get("search.seed") == 9
        assert cfg.get("gpu") == "a100"

    @pytest.mark.parametrize("path", ["nope", "search.nope", "nope.seed"])
    def test_update_unknown_path_rejected(self, path):
        with pytest.raises(ValueError):
            SessionConfig().update(path, 1)

    def test_flat_fields_bijection_with_schema(self):
        # Every leaf path has exactly one flat name and vice versa.
        assert sorted(FLAT_FIELDS.values()) == sorted(field_paths())
        assert len(set(FLAT_FIELDS.values())) == len(FLAT_FIELDS)

    def test_tuner_knobs_are_flat_fields(self):
        assert set(TUNER_KNOBS) <= set(FLAT_FIELDS)

    def test_describe_fields_covers_schema(self):
        rows = describe_fields()
        assert [r["path"] for r in rows] == field_paths()
        assert all(r["env"].startswith("REPRO_") for r in rows)


class TestSerialization:
    def test_round_trip_default(self):
        cfg = SessionConfig()
        assert SessionConfig.from_json(cfg.to_json()) == cfg

    def test_round_trip_customized(self):
        cfg = SessionConfig.make(
            gpu="rtx3080",
            seed=11,
            strategy="random",
            exec_backend="scalar",
            dynamic="buckets",
            dynamic_loops=("m",),
            cache_enabled=False,
            serve_workers=2,
            queue_limit=8,
            trace=True,
        )
        restored = SessionConfig.from_json(cfg.to_json())
        assert restored == cfg
        assert restored.exec.dynamic_loops == ("m",)  # list -> tuple

    def test_unknown_keys_tolerated(self):
        payload = SessionConfig().to_dict()
        payload["future_section"] = {"x": 1}
        payload["search"]["future_knob"] = 42
        assert SessionConfig.from_dict(payload) == SessionConfig()

    def test_missing_keys_take_defaults(self):
        cfg = SessionConfig.from_dict({"search": {"seed": 4}})
        assert cfg.search.seed == 4
        assert cfg.exec.backend == "auto"

    def test_invalid_values_still_raise(self):
        payload = SessionConfig().to_dict()
        payload["search"]["strategy"] = "quantum"
        with pytest.raises(ValueError):
            SessionConfig.from_dict(payload)

    def test_bad_json_raises_value_error(self):
        with pytest.raises(ValueError, match="invalid config JSON"):
            SessionConfig.from_json("{not json")

    def test_non_object_payload_rejected(self):
        with pytest.raises(ValueError):
            SessionConfig.from_dict([1, 2])
        with pytest.raises(ValueError):
            SessionConfig.from_dict({"search": [1]})

    def test_save_load(self, tmp_path):
        cfg = SessionConfig.make(seed=13, strategy="annealing")
        path = cfg.save(str(tmp_path / "cfg.json"))
        assert SessionConfig.load(path) == cfg

    def test_to_dict_carries_version(self):
        payload = SessionConfig().to_dict()
        assert payload["version"] == 1
        assert json.dumps(payload)  # JSON-able


# Random valid configs for the property-based round trip.
_configs = st.builds(
    SessionConfig.make,
    gpu=st.sampled_from(["a100", "rtx3080", "v100"]),
    seed=st.integers(0, 2**31 - 1),
    strategy=st.sampled_from(sorted(strategy_names())),
    population_size=st.integers(1, 4096),
    top_n=st.integers(1, 64),
    epsilon=st.floats(0, 1, allow_nan=False),
    max_rounds=st.integers(1, 64),
    min_rounds=st.integers(0, 64),
    workers=st.integers(1, 8),
    cost_model=st.booleans(),
    measure_topk=st.integers(0, 16),
    exec_backend=st.sampled_from(["auto", "compiled", "vectorized", "scalar"]),
    verify=st.sampled_from(["off", "best", "all"]),
    dynamic=st.sampled_from(["off", "buckets"]),
    dynamic_loops=st.lists(
        st.sampled_from(["m", "n", "k", "h"]), min_size=1, max_size=4, unique=True
    ).map(tuple),
    cache_enabled=st.booleans(),
    serve_workers=st.integers(1, 16),
    queue_limit=st.integers(1, 1024),
    trace=st.booleans(),
)


class TestRoundTripProperty:
    @settings(max_examples=60, deadline=None)
    @given(cfg=_configs)
    def test_json_round_trip_lossless(self, cfg):
        assert SessionConfig.from_json(cfg.to_json()) == cfg

    @settings(max_examples=60, deadline=None)
    @given(cfg=_configs)
    def test_content_hash_stable_under_round_trip(self, cfg):
        assert SessionConfig.from_json(cfg.to_json()).content_hash() == (
            cfg.content_hash()
        )


class TestEnvOverrides:
    def test_env_var_names(self):
        assert env_var_for("gpu") == "REPRO_GPU"
        assert env_var_for("search.seed") == "REPRO_SEARCH_SEED"
        # The variable the cache layer honored long before this config layer.
        assert env_var_for("cache.dir") == "REPRO_CACHE_DIR"

    def test_env_overrides_typed_fields(self):
        cfg = apply_env(
            SessionConfig(),
            {
                "REPRO_SEARCH_SEED": "9",
                "REPRO_EXEC_BACKEND": "scalar",
                "REPRO_CACHE_ENABLED": "no",
                "REPRO_SEARCH_EPSILON": "0.5",
                "REPRO_EXEC_DYNAMIC_LOOPS": "m, n",
            },
        )
        assert cfg.search.seed == 9
        assert cfg.exec.backend == "scalar"
        assert cfg.cache.enabled is False
        assert cfg.search.epsilon == 0.5
        assert cfg.exec.dynamic_loops == ("m", "n")

    def test_env_wins_over_config_value(self):
        base = SessionConfig.make(seed=3)
        assert apply_env(base, {"REPRO_SEARCH_SEED": "4"}).search.seed == 4

    def test_unset_env_leaves_fields(self):
        base = SessionConfig.make(seed=3)
        assert apply_env(base, {}) == base

    @pytest.mark.parametrize(
        "var,raw",
        [
            ("REPRO_SEARCH_SEED", "three"),
            ("REPRO_CACHE_ENABLED", "maybe"),
            ("REPRO_SEARCH_EPSILON", "tiny"),
            ("REPRO_EXEC_BACKEND", "cuda"),
        ],
    )
    def test_malformed_env_raises(self, var, raw):
        with pytest.raises(ValueError):
            apply_env(SessionConfig(), {var: raw})

    def test_default_applies_environ(self):
        cfg = SessionConfig.default({"REPRO_SEARCH_SEED": "5"})
        assert cfg.search.seed == 5


class TestVariantKeyRegression:
    """Config-derived cache keys must be bit-identical to the historical
    variant_key() strings — no persistent-store entry may be orphaned."""

    CASES = [
        # (flat overrides, exact historical key)
        (dict(), "mcfuser"),
        (dict(strategy="random"), "mcfuser+random"),
        (dict(strategy="annealing"), "mcfuser+annealing"),
        (dict(strategy="exhaustive"), "mcfuser+exhaustive"),
        (dict(measure_topk=1), "mcfuser+topk1"),
        (dict(measure_topk=2), "mcfuser+topk2"),
        (dict(strategy="random", measure_topk=3), "mcfuser+random+topk3"),
        (dict(variant="chimera"), "chimera"),
        (dict(variant="chimera", strategy="random"), "chimera+random"),
        (dict(variant="chimera", measure_topk=1), "chimera+topk1"),
    ]

    @pytest.mark.parametrize("overrides,expected", CASES)
    def test_exact_historical_strings(self, overrides, expected):
        assert SessionConfig.make(**overrides).variant_key == expected

    @pytest.mark.parametrize("overrides,expected", CASES)
    def test_matches_legacy_function(self, overrides, expected):
        cfg = SessionConfig.make(**overrides)
        assert cfg.variant_key == legacy_variant_key(
            cfg.search.variant, cfg.search.strategy, cfg.search.measure_topk
        )

    @settings(max_examples=40, deadline=None)
    @given(
        variant=st.sampled_from(["mcfuser", "chimera"]),
        strategy=st.sampled_from(sorted(strategy_names())),
        topk=st.integers(0, 8),
    )
    def test_property_matches_legacy(self, variant, strategy, topk):
        cfg = SessionConfig.make(variant=variant, strategy=strategy, measure_topk=topk)
        assert cfg.variant_key == legacy_variant_key(variant, strategy, topk)


class TestContentHash:
    def test_equal_configs_equal_hashes(self):
        a = SessionConfig.make(seed=3)
        b = SessionConfig.make(seed=3)
        assert a.content_hash() == b.content_hash()
        assert len(a.content_hash()) == 32

    def test_any_field_changes_hash(self):
        base = SessionConfig()
        assert base.content_hash() != base.evolve(seed=1).content_hash()
        assert base.content_hash() != base.evolve(trace=True).content_hash()


class TestLegacyShims:
    def test_search_overrides_passes_knobs(self):
        out = search_overrides({"seed": 3, "max_rounds": 2})
        assert out == {"seed": 3, "max_rounds": 2}

    def test_search_overrides_hints_typed_replacement(self):
        # A flat config name that is not a tuner knob: the error names the
        # typed field that replaced the untyped escape hatch.
        with pytest.raises(ValueError, match="serve.workers"):
            search_overrides({"serve_workers": 2})

    def test_search_overrides_unknown_key_lists_knobs(self):
        with pytest.raises(ValueError, match="valid knobs"):
            search_overrides({"n_trials": 100})

    def test_build_legacy_config_warns_once_naming_fields(self):
        with pytest.warns(DeprecationWarning) as record:
            cfg = build_legacy_config("MCFuserTuner", {"seed": 3, "top_n": 4})
        assert len(record) == 1
        message = str(record[0].message)
        assert "search.seed" in message and "search.top_n" in message
        assert "SessionConfig" in message
        assert cfg.search.seed == 3 and cfg.search.top_n == 4

    def test_build_legacy_config_empty_is_silent(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            cfg = build_legacy_config("MCFuserTuner", {})
        assert cfg == SessionConfig()

    def test_build_legacy_config_respects_base(self):
        base = SessionConfig.make(strategy="random")
        with pytest.warns(DeprecationWarning):
            cfg = build_legacy_config("BatchTuner", {"seed": 5}, base=base)
        assert cfg.search.strategy == "random"
        assert cfg.search.seed == 5
