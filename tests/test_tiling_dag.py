"""Unit tests for the schedule DAG view (Fig. 5)."""

import networkx as nx

from repro.tiling.dag import dag_summary, dead_loops, memory_opt_report, schedule_dag
from repro.tiling.expr import TilingExpr
from repro.tiling.schedule import build_schedule

TILES = {"m": 32, "n": 16, "k": 16, "h": 16}


def sched(chain, expr, tiles=None, optimize=False):
    return build_schedule(chain, TilingExpr.parse(expr), tiles or TILES, optimize=optimize)


class TestDagStructure:
    def test_acyclic(self, small_gemm):
        g = schedule_dag(sched(small_gemm, "mhnk"))
        assert nx.is_directed_acyclic_graph(g)

    def test_fig5_nodes(self, small_gemm):
        g = schedule_dag(sched(small_gemm, "mhnk"))
        labels = {d.get("label") for _, d in g.nodes(data=True) if d["kind"] == "stmt"}
        assert labels == {"LA", "LB", "CC", "LD", "CE", "SE"}

    def test_scope_edges_follow_homes(self, small_gemm):
        g = schedule_dag(sched(small_gemm, "mhnk"))
        assert g.has_edge(("loop", "k"), ("stmt", "load", "A", "C"))
        assert g.has_edge(("loop", "n"), ("stmt", "compute", "E", "E"))

    def test_order_edges(self, small_gemm):
        g = schedule_dag(sched(small_gemm, "mhnk"))
        assert g.has_edge(("stmt", "load", "A", "C"), ("stmt", "compute", "C", "C"))
        assert g.has_edge(("stmt", "compute", "C", "C"), ("stmt", "compute", "E", "E"))
        assert g.has_edge(("stmt", "compute", "E", "E"), ("stmt", "store", "E", "E"))

    def test_loop_nesting_edges(self, small_gemm):
        g = schedule_dag(sched(small_gemm, "mhnk"))
        assert g.has_edge(("loop", "n"), ("loop", "k"))

    def test_summary_counts(self, small_gemm):
        summary = dag_summary(sched(small_gemm, "mhnk"))
        assert summary["stmts"] == 6
        assert summary["loops"] == 5  # grid b, m, h + residual n, k
        assert summary["order_edges"] == 5


class TestDeadLoops:
    def test_no_dead_loops_generic(self, small_gemm):
        assert dead_loops(sched(small_gemm, "mhnk")) == ()

    def test_k_dead_with_full_tile(self, small_gemm):
        tiles = {"m": 32, "n": 16, "k": 64, "h": 16}
        assert dead_loops(sched(small_gemm, "mhnk", tiles)) == ("k",)


class TestMemoryOptReport:
    def test_reduction_factor(self, small_gemm):
        tiles = {"m": 32, "n": 16, "k": 64, "h": 16}
        report = memory_opt_report(small_gemm, TilingExpr.parse("mhnk"), tiles)
        assert report.removed_loops == ("k",)
        assert report.reduction_factor > 1.5

    def test_noop_when_no_dead_loops(self, small_gemm):
        report = memory_opt_report(small_gemm, TilingExpr.parse("mhnk"), TILES)
        assert report.reduction_factor == 1.0
