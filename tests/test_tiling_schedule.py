"""Unit tests for schedule expansion: placement, trips, traffic, validity."""

import pytest

from repro.gpu.specs import A100
from repro.ir.chain import gemm_chain
from repro.tiling.expr import TilingExpr
from repro.tiling.schedule import InvalidScheduleError, Statement, build_schedule

TILES = {"m": 32, "n": 16, "k": 16, "h": 16}


def sched(chain, expr, tiles=None, optimize=True):
    return build_schedule(chain, TilingExpr.parse(expr), tiles or TILES, optimize=optimize)


def stmt_sequence(schedule):
    """(kind, tensor) pairs in pretty-print order (flattened)."""
    return [(s.kind, s.tensor) for s in schedule.statements()]


class TestFig4Structure:
    """The mhnk expansion must match the paper's Fig. 4(a)."""

    def test_statement_order(self, small_gemm):
        s = sched(small_gemm, "mhnk")
        assert stmt_sequence(s) == [
            ("load", "A"),
            ("load", "B"),
            ("compute", "C"),
            ("load", "D"),
            ("compute", "E"),
            ("store", "E"),
        ]

    def test_homes(self, small_gemm):
        s = sched(small_gemm, "mhnk")
        homes = {(st.kind, st.tensor): st.home for st in s.statements()}
        assert homes[("load", "A")] == "k"
        assert homes[("load", "B")] == "k"
        assert homes[("compute", "C")] == "k"
        assert homes[("load", "D")] == "n"
        assert homes[("compute", "E")] == "n"
        assert homes[("store", "E")] is None  # per-block epilogue (grid scope)

    def test_grid_dims(self, small_gemm):
        s = sched(small_gemm, "mhnk")
        assert s.grid_dims == (("b", 2), ("m", 3), ("h", 3))
        assert s.grid_size == 18

    def test_pretty_contains_structure(self, small_gemm):
        text = sched(small_gemm, "mhnk").pretty()
        assert "for n in range" in text and "for k in range" in text
        assert text.index("Load(tile A)") < text.index("Compute(tile C)")
        assert text.index("Compute(tile C)") < text.index("Compute(tile E)")


class TestTripCounts:
    def test_compute_c_trips(self, small_gemm):
        s = sched(small_gemm, "mhnk")
        cc = next(st for st in s.statements() if st.kind == "compute" and st.block == "C")
        # grid (b=2, m=3, h=3) x n(5) x k(4)
        assert s.trip_count(cc) == 2 * 3 * 3 * 5 * 4

    def test_compute_e_trips(self, small_gemm):
        s = sched(small_gemm, "mhnk")
        ce = next(st for st in s.statements() if st.kind == "compute" and st.block == "E")
        assert s.trip_count(ce) == 2 * 3 * 3 * 5

    def test_store_trips(self, small_gemm):
        s = sched(small_gemm, "mhnk")
        se = next(st for st in s.statements() if st.kind == "store")
        assert s.trip_count(se) == s.grid_size


class TestTrafficAccounting:
    def test_store_bytes_equal_padded_output(self, small_gemm):
        s = sched(small_gemm, "mhnk")
        # E is (96 x 48) padded to tiles (32, 16): exact fit -> batch*96*48*2B
        assert s.dram_write_bytes() == 2 * 96 * 48 * 2

    def test_h_redundancy_in_flops(self, small_gemm):
        # C is recomputed per h-block in deep tilings: flops scale with h-extent.
        narrow = sched(small_gemm, "mhnk", {"m": 32, "n": 16, "k": 16, "h": 16})
        wide = sched(small_gemm, "mhnk", {"m": 32, "n": 16, "k": 16, "h": 48})
        assert narrow.total_flops() > wide.total_flops()

    def test_flat_avoids_h_recompute(self, small_gemm):
        deep = sched(small_gemm, "mhnk", {"m": 32, "n": 16, "k": 16, "h": 16})
        flat = sched(small_gemm, "mn(k,h)", {"m": 32, "n": 16, "k": 16, "h": 48})
        assert flat.total_flops() < deep.total_flops()

    def test_bigger_tiles_less_traffic(self, small_gemm):
        small = sched(small_gemm, "mhnk", {"m": 16, "n": 16, "k": 16, "h": 16})
        large = sched(small_gemm, "mhnk", {"m": 96, "n": 80, "k": 64, "h": 48})
        assert large.dram_read_bytes() < small.dram_read_bytes()

    def test_padding_inflates_traffic(self, ragged_gemm):
        tiles = {"m": 32, "n": 32, "k": 32, "h": 32}
        s = sched(ragged_gemm, "mhnk", tiles)
        exact = ragged_gemm.min_dram_bytes()
        assert s.dram_write_bytes() > (100 * 60 * 2) - 1  # padded 128x64 stores


class TestExtent1Optimization:
    def test_load_hoisted_to_grid_when_k_dead(self, small_gemm):
        tiles = {"m": 32, "n": 16, "k": 64, "h": 16}  # k extent 1
        opt = sched(small_gemm, "mhnk", tiles, optimize=True)
        la = next(st for st in opt.statements() if st.kind == "load" and st.tensor == "A")
        assert la.home is None  # hoisted to per-block scope

    def test_optimization_reduces_traffic(self, small_gemm):
        tiles = {"m": 32, "n": 16, "k": 64, "h": 16}
        base = sched(small_gemm, "mhnk", tiles, optimize=False)
        opt = sched(small_gemm, "mhnk", tiles, optimize=True)
        assert opt.dram_read_bytes() < base.dram_read_bytes()

    def test_optimization_no_effect_without_dead_loops(self, small_gemm):
        base = sched(small_gemm, "mhnk", TILES, optimize=False)
        opt = sched(small_gemm, "mhnk", TILES, optimize=True)
        assert base.dram_read_bytes() == opt.dram_read_bytes()
        assert base.total_flops() == opt.total_flops()

    def test_residual_loops_shrink(self, small_gemm):
        tiles = {"m": 32, "n": 80, "k": 16, "h": 16}  # n extent 1
        opt = sched(small_gemm, "mhnk", tiles, optimize=True)
        assert "n" not in opt.residual.loops()


class TestRule2LiveCopies:
    def test_nk_class_single_copies(self, small_gemm):
        s = sched(small_gemm, "mhnk")
        assert s.live_copies("C") == 1
        assert s.live_copies("E") == 1

    def test_kn_class_multiplies_intermediate(self, small_gemm):
        s = sched(small_gemm, "mhkn")
        assert s.live_copies("C") == 5  # n extent inside k

    def test_flat_multiplies_output_unless_full_h(self, small_gemm):
        partial = sched(small_gemm, "mn(k,h)", {"m": 32, "n": 16, "k": 16, "h": 16})
        full = sched(small_gemm, "mn(k,h)", {"m": 32, "n": 16, "k": 16, "h": 48})
        assert partial.live_copies("E") == 3
        assert full.live_copies("E") == 1

    def test_inputs_always_single(self, small_gemm):
        s = sched(small_gemm, "mhkn")
        assert s.live_copies("A") == 1


class TestValidity:
    def test_nk_valid(self, small_gemm):
        sched(small_gemm, "mhnk").check_valid()

    def test_kn_invalid(self, small_gemm):
        with pytest.raises(InvalidScheduleError):
            sched(small_gemm, "mhkn").check_valid()

    def test_kn_valid_with_full_n(self, small_gemm):
        s = sched(small_gemm, "mhkn", {"m": 32, "n": 80, "k": 16, "h": 16})
        s.check_valid()  # n dead -> consumer escapes k's scope

    def test_kn_valid_with_full_k(self, small_gemm):
        s = sched(small_gemm, "mhkn", {"m": 32, "n": 16, "k": 64, "h": 16})
        s.check_valid()

    def test_is_valid_flag(self, small_gemm):
        assert sched(small_gemm, "mhnk").is_valid
        assert not sched(small_gemm, "mhkn").is_valid


class TestSharedMemory:
    def test_estimate_is_eq1(self, small_gemm):
        s = sched(small_gemm, "mhnk")
        # A(32x16) + B(16x16) + D(16x16) + C(32x16) + E(32x16), fp16
        expect = 2 * (32 * 16 + 16 * 16 + 16 * 16 + 32 * 16 + 32 * 16)
        assert s.shm_estimate() == expect

    def test_measured_at_least_reserve_more(self, small_gemm):
        s = sched(small_gemm, "mhnk")
        assert s.shm_measured(A100) > 0

    def test_double_buffer_flags(self, small_gemm):
        bufs = {b.tensor: b for b in sched(small_gemm, "mhnk").tile_buffers()}
        assert bufs["A"].double_buffered  # loaded inside reduction k
        assert bufs["D"].double_buffered  # loaded inside reduction n (of E)
        assert bufs["C"].role == "stage"
        assert bufs["E"].role == "accumulator"


class TestKernelLaunch:
    def test_launch_fields(self, small_gemm):
        s = sched(small_gemm, "mhnk")
        k = s.kernel_launch(A100)
        assert k.grid == s.grid_size
        assert k.flops == s.total_flops()
        assert k.dram_read_bytes == s.dram_read_bytes()
        assert k.codegen == "triton"
        assert k.dram_compulsory_read_bytes == pytest.approx(
            2 * (96 * 64 + 64 * 80 + 80 * 48) * 2
        )

    def test_representative_tiles_dominant_block(self, small_gemm):
        s = sched(small_gemm, "mhnk")
        tm, tn, tk = s.representative_tiles()
        assert (tm, tn, tk) == (32, 16, 16)  # block C dominates flops


class TestErrors:
    def test_missing_tile(self, small_gemm):
        with pytest.raises(ValueError):
            build_schedule(small_gemm, TilingExpr.parse("mhnk"), {"m": 32})

    def test_bad_tile_value(self, small_gemm):
        bad = dict(TILES, m=0)
        with pytest.raises(ValueError):
            build_schedule(small_gemm, TilingExpr.parse("mhnk"), bad)
