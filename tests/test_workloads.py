"""Tests for the Table II / Table III workload catalogs."""

import pytest

from repro.workloads import (
    ATTENTION_CONFIGS,
    GEMM_CHAIN_CONFIGS,
    attention_workload,
    attention_workloads,
    gemm_workload,
    gemm_workloads,
)


class TestTableII:
    def test_twelve_chains(self):
        assert list(GEMM_CHAIN_CONFIGS) == [f"G{i}" for i in range(1, 13)]

    def test_sample_values(self):
        assert GEMM_CHAIN_CONFIGS["G1"] == (1, 512, 256, 64, 64)
        assert GEMM_CHAIN_CONFIGS["G6"] == (1, 512, 512, 1024, 256)
        assert GEMM_CHAIN_CONFIGS["G12"] == (8, 1024, 1024, 128, 128)

    def test_builder(self):
        chain = gemm_workload("G4")
        assert chain.name == "G4"
        assert chain.loops == {"m": 512, "n": 512, "k": 256, "h": 256}
        assert chain.batch == 1

    def test_batch_series(self):
        assert gemm_workload("G11").batch == 4

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            gemm_workload("G13")

    def test_all_workloads_order(self):
        names = [c.name for c in gemm_workloads()]
        assert names == [f"G{i}" for i in range(1, 13)]

    def test_subset(self):
        assert [c.name for c in gemm_workloads(["G2", "G9"])] == ["G2", "G9"]


class TestTableIII:
    def test_nine_modules(self):
        assert list(ATTENTION_CONFIGS) == [f"S{i}" for i in range(1, 10)]

    def test_bert_family(self):
        assert ATTENTION_CONFIGS["S1"].network == "Bert-Small"
        assert ATTENTION_CONFIGS["S2"].heads == 12
        assert ATTENTION_CONFIGS["S3"].heads == 16

    def test_vit_huge_head_dim_80(self):
        cfg = ATTENTION_CONFIGS["S6"]
        assert cfg.k == cfg.h == 80

    def test_mixer_single_head(self):
        for name in ("S7", "S8", "S9"):
            assert ATTENTION_CONFIGS[name].heads == 1

    def test_builder_folds_heads(self):
        chain = attention_workload("S2")
        assert chain.batch == 12
        assert chain.loops == {"m": 512, "n": 512, "k": 64, "h": 64}
        assert chain.blocks[-1].softmax_over == "n"

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            attention_workload("S10")

    def test_all_workloads(self):
        assert len(attention_workloads()) == 9
