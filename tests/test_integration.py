"""Full-pipeline integration tests: tune -> compile -> execute -> verify."""

import numpy as np
import pytest

from repro import (
    A100,
    MCFuserTuner,
    attention_chain,
    compile_schedule,
    gemm_chain,
)
from repro.codegen.runtime import OperatorModule
from repro.frontend.models import bert_encoder
from repro.frontend.partition import partition_graph


class TestTuneCompileRun:
    def test_gemm_chain_pipeline(self):
        chain = gemm_chain(2, 128, 128, 64, 64, name="int-g")
        report = MCFuserTuner(
            A100, population_size=96, top_n=6, max_rounds=3, min_rounds=2, seed=0
        ).tune(chain)
        module = compile_schedule(report.best_schedule, A100)
        inputs = chain.random_inputs(0)
        out = module.run(inputs)["E"]
        ref = chain.reference(inputs)["E"]
        np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-5)
        assert module.time() == pytest.approx(report.best_time, rel=0.05)

    def test_attention_pipeline(self):
        chain = attention_chain(4, 128, 128, 32, 32, name="int-a")
        report = MCFuserTuner(
            A100, population_size=96, top_n=6, max_rounds=3, min_rounds=2, seed=0
        ).tune(chain)
        module = compile_schedule(report.best_schedule, A100)
        inputs = chain.random_inputs(0)
        out = module.run(inputs)["O"]
        ref = chain.reference(inputs)["O"]
        np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-5)

    def test_artifact_bundle(self):
        """Every tuned kernel ships with TIR, Triton source and PTX."""
        from repro.codegen import extract_tiling_expr, tir_from_schedule

        chain = gemm_chain(1, 128, 128, 64, 64, name="int-art")
        report = MCFuserTuner(
            A100, population_size=64, top_n=4, max_rounds=2, min_rounds=1, seed=0
        ).tune(chain)
        module = OperatorModule(schedule=report.best_schedule, gpu=A100)
        tir = tir_from_schedule(report.best_schedule)
        assert extract_tiling_expr(tir).render() == report.best_schedule.residual.render()
        assert "mma.sync" in module.ptx
        assert "@triton.jit" in module.triton.render()


class TestFusedSubgraphMatchesGraphExecution:
    def test_partitioned_attention_numerics(self):
        """The MBCI sub-graph lifted out of BERT computes what the original
        graph ops computed."""
        graph = bert_encoder("Bert-Small", 64)
        partition = partition_graph(graph, A100)
        sg = partition.subgraphs[0]
        feed = graph.random_feed(seed=0, scale=0.05)
        env = graph.execute(feed)

        chain = sg.chain
        inputs = {
            "Q": env[sg.inputs[0]],
            "K": env[sg.inputs[1]],
            "V": env[sg.inputs[2]],
        }
        fused_ref = chain.reference(inputs)[chain.output]
        np.testing.assert_allclose(fused_ref, env[sg.output], rtol=1e-4, atol=1e-5)

        report = MCFuserTuner(
            A100, population_size=64, top_n=4, max_rounds=2, min_rounds=1, seed=0
        ).tune(chain)
        fused_out = compile_schedule(report.best_schedule, A100).run(inputs)[chain.output]
        np.testing.assert_allclose(fused_out, env[sg.output], rtol=1e-3, atol=1e-5)
